use std::collections::HashMap; // omx-lint: allow(unordered-iter) lookup only, never iterated

// omx-lint: allow(unordered-iter) lookup only, never iterated
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
