use std::collections::HashMap; // omx-lint: allow(unordered-iter) lookup only, never iterated [test: tests/proof.rs::covers_fixture_waiver]

// omx-lint: allow(unordered-iter) lookup only, never iterated [test: tests/proof.rs::covers_fixture_waiver]
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
