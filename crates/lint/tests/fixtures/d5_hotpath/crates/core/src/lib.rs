pub struct Sim {
    pending: u64,
}

impl Sim {
    pub fn schedule_at(&mut self) {
        self.pending += direct_alloc().len() as u64;
        hop_one(self.pending);
    }
}

fn direct_alloc() -> Vec<u32> {
    vec![1, 2, 3]
}

fn hop_one(n: u64) {
    hop_two(n);
}

fn hop_two(n: u64) {
    let _s = format!("deep {n}");
}
