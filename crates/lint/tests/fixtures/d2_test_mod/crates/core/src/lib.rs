pub fn prod() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_only_map() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(super::prod(), 1);
    }
}
