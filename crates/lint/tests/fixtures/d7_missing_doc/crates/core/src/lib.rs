pub struct Knobs {
    pub alpha: u32,
    pub beta: u32,
    pub gamma: u32,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs { alpha: 1, beta: 2 }
    }
}
