pub struct Nic {
    slots: Vec<u32>,
}

impl Nic {
    pub fn deliver(&mut self, i: usize) -> u32 {
        self.pick(i)
    }

    fn pick(&self, i: usize) -> u32 {
        let first = self.slots.get(0).copied().unwrap();
        first + self.slots[i]
    }
}
