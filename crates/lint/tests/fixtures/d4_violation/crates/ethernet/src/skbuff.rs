pub struct Skbuff {
    pub src: u32,
}

impl Skbuff {
    pub fn new(src: u32) -> Skbuff {
        Skbuff { src }
    }
}
