pub fn forge() -> Skbuff {
    Skbuff { src: 0 }
}
