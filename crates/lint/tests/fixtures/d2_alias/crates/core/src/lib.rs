use std::collections::HashMap as M;

pub fn histogram(xs: &[u32]) -> usize {
    let mut m: M<u32, u32> = M::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m.len()
}
