use std::collections::HashMap;

pub fn order_dependent(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().copied().collect()
}
