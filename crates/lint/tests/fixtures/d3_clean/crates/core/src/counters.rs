pub struct Counters {
    pub tx_tiny: u64,
    pub rx_tiny: u64,
}

impl Counters {
    pub fn publish(&self) {
        register("counters.tx_tiny", self.tx_tiny);
        register("counters.rx_tiny", self.rx_tiny);
    }
}
