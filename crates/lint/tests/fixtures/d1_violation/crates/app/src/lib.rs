use std::time::Instant;

pub fn bad() {
    let _t = Instant::now();
    let _h = std::thread::spawn(|| 1);
    let _r = SplitMix64::new(42);
}
