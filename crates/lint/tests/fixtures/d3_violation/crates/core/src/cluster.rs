pub struct Stats {
    pub frames_sent: u64,
}
