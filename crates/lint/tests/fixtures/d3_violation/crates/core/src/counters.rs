pub struct Counters {
    pub tx_tiny: u64,
    pub orphan: u64,
}

impl Counters {
    pub fn publish(&self) {
        register("counters.tx_tiny", self.tx_tiny);
    }
}
