fn covers_fixture_waiver() {}
