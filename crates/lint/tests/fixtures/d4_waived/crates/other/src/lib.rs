pub fn forge() -> Skbuff {
    // omx-lint: allow(lifecycle-ctor) fixture demonstrates the waiver path
    Skbuff { src: 0 }
}
