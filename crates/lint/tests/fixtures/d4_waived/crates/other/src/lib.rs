pub fn forge() -> Skbuff {
    // omx-lint: allow(lifecycle-ctor) fixture demonstrates the waiver path [test: tests/proof.rs::covers_fixture_waiver]
    Skbuff { src: 0 }
}
