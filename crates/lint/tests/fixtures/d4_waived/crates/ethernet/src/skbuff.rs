pub struct Skbuff {
    pub src: u32,
    san: Token,
}

impl Skbuff {
    pub fn new(src: u32) -> Skbuff {
        Skbuff {
            src,
            san: SimSanitizer::alloc(Kind::Skbuff),
        }
    }
}
