//! Parser round-trip property: for arbitrary item soups the
//! recursive-descent parser must attribute *every* token to some item
//! (real or skimmed) — no holes in the consumption map, no hangs, no
//! panics. The generator composes the constructs the resolver cares
//! about (use trees with aliases and globs, nested inline mods, impl
//! blocks, fns with messy bodies) with deliberately hostile filler:
//! stray generics, raw strings, char literals that look like
//! lifetimes, unbalanced-looking macro bodies inside balanced braces.

use omx_lint::parse::parse;
use omx_lint::tokenize;
use proptest::prelude::*;

/// A pool of identifiers so generated paths occasionally collide the
/// way real code does.
fn ident(i: u8) -> &'static str {
    const POOL: [&str; 12] = [
        "alpha", "beta", "gamma", "delta", "nic", "bh", "pull", "sim", "cfg", "queue", "frag",
        "ring",
    ];
    POOL[(i as usize) % POOL.len()]
}

/// One top-level item rendered as source text.
fn render_item(kind: u8, a: u8, b: u8, c: u8, depth: u8) -> String {
    match kind % 11 {
        0 => format!("use {}::{};\n", ident(a), ident(b)),
        1 => format!("use {}::{} as {};\n", ident(a), ident(b), ident(c)),
        2 => format!("pub use {}::{}::*;\n", ident(a), ident(b)),
        3 => format!(
            "use {}::{{{}, {} as {}}};\n",
            ident(a),
            ident(b),
            ident(b),
            ident(c)
        ),
        4 => format!(
            "pub fn {}_{}(x: u64) -> u64 {{ let v = {}(x); v + {} }}\n",
            ident(a),
            b,
            ident(c),
            b
        ),
        5 => format!(
            "pub struct {} {{ pub {}: u64, pub {}: Vec<u8>, }}\n",
            ident(a),
            ident(b),
            ident(c)
        ),
        6 => format!(
            "impl {} {{ fn {}(&self) -> u64 {{ self.{} }} }}\n",
            ident(a),
            ident(b),
            ident(c)
        ),
        7 if depth > 0 => format!(
            "mod {} {{\n{}}}\n",
            ident(a),
            render_item(b, c, a, b, depth - 1)
        ),
        7 => format!("mod {};\n", ident(a)),
        8 => format!(
            "#[cfg(test)]\nmod {}_tests {{ #[test] fn {}() {{ assert!({} > 0); }} }}\n",
            ident(a),
            ident(b),
            c as u64 + 1
        ),
        // Hostile filler: constructs the parser only skims, with
        // token shapes that historically confuse hand-rolled scanners.
        9 => format!(
            "const {}: &str = \"b{}race {{ in a }} string\"; // '}}' comment\n",
            ident(a).to_uppercase(),
            b
        ),
        _ => format!(
            "pub fn {}<T: Into<u64>>(t: T) -> u64 {{ let s = '{{'; t.into() ^ (s as u64 ^ {}) }}\n",
            ident(a),
            c
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every token the tokenizer produces is consumed by the parser.
    #[test]
    fn parser_consumes_every_token(
        items in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 0..24)
    ) {
        let src: String = items
            .iter()
            .map(|&(k, a, b, c)| render_item(k, a, b, c, 2))
            .collect();
        let (toks, _) = tokenize(&src);
        let parsed = parse(&toks);
        let holes: Vec<usize> = parsed
            .consumed
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(
            holes.is_empty(),
            "unconsumed tokens {:?} in:\n{}\n(first hole: {:?})",
            holes,
            src,
            holes.first().map(|&i| &toks[i])
        );
        prop_assert_eq!(parsed.consumed.len(), toks.len());
    }
}

#[test]
fn empty_and_pathological_sources_round_trip() {
    for src in [
        "",
        "}",
        "}}}",
        "use ;",
        "fn",
        "impl {",
        "mod m { mod n { fn f() {} }",
        "#[derive(Default)] pub struct S;",
    ] {
        let (toks, _) = tokenize(src);
        let parsed = parse(&toks);
        assert_eq!(parsed.consumed.len(), toks.len());
        assert!(
            parsed.consumed.iter().all(|&c| c),
            "unconsumed tokens in {src:?}"
        );
    }
}
