//! Fixture tests for every omx-lint rule: each rule must fire on its
//! violation fixture, honor its waiver fixture, and stay silent on
//! clean trees — plus the lint must pass on the actual workspace.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules(report: &omx_lint::Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.as_str()).collect()
}

// ------------------------------------------------------------------ D1

#[test]
fn d1_flags_wall_clock_threads_and_adhoc_rng() {
    let r = omx_lint::check(&fixture("d1_violation"));
    let rules = rules(&r);
    assert!(
        rules.contains(&"wall-clock"),
        "violations: {:?}",
        r.violations
    );
    assert!(rules.contains(&"thread"), "violations: {:?}", r.violations);
    assert!(
        rules.contains(&"ad-hoc-rng"),
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn d1_waiver_is_honored_and_reported() {
    let r = omx_lint::check(&fixture("d1_waived"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "ad-hoc-rng");
    assert!(r.waivers[0].reason.contains("fixture"));
}

// ------------------------------------------------------------------ D2

#[test]
fn d2_flags_hashmap_in_sim_crate() {
    let r = omx_lint::check(&fixture("d2_violation"));
    assert!(!r.is_clean());
    assert!(rules(&r).iter().all(|&s| s == "unordered-iter"));
    assert!(r
        .violations
        .iter()
        .all(|v| v.file.starts_with("crates/core/")));
}

#[test]
fn d2_waiver_is_honored_per_site() {
    let r = omx_lint::check(&fixture("d2_waived"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 2, "both directives surfaced");
}

#[test]
fn d2_ignores_non_simulation_crates() {
    let r = omx_lint::check(&fixture("d2_outside"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

#[test]
fn d2_exempts_cfg_test_modules() {
    let r = omx_lint::check(&fixture("d2_test_mod"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

// ------------------------------------------------------------------ D3

#[test]
fn d3_flags_unregistered_counter_and_missing_stats_field() {
    let r = omx_lint::check(&fixture("d3_violation"));
    let counters: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "counters-registry")
        .collect();
    assert_eq!(counters.len(), 2, "violations: {:?}", r.violations);
    assert!(counters.iter().any(|v| v.message.contains("orphan")));
    assert!(counters.iter().any(|v| v.message.contains("Stats")));
}

#[test]
fn d3_clean_registration_passes() {
    let r = omx_lint::check(&fixture("d3_clean"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

// ------------------------------------------------------------------ D4

#[test]
fn d4_flags_literal_outside_home_and_sanitizer_free_home() {
    let r = omx_lint::check(&fixture("d4_violation"));
    let lifecycle: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "lifecycle-ctor")
        .collect();
    assert_eq!(lifecycle.len(), 2, "violations: {:?}", r.violations);
    assert!(lifecycle
        .iter()
        .any(|v| v.file == "crates/other/src/lib.rs" && v.message.contains("struct-literal")));
    assert!(lifecycle
        .iter()
        .any(|v| v.file == "crates/ethernet/src/skbuff.rs" && v.message.contains("SimSanitizer")));
}

#[test]
fn d4_waiver_honored_when_home_threads_sanitizer() {
    let r = omx_lint::check(&fixture("d4_waived"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "lifecycle-ctor");
}

// ----------------------------------------------------------- workspace

#[test]
fn clean_tree_is_clean() {
    let r = omx_lint::check(&fixture("clean"));
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert!(r.waivers.is_empty());
}

#[test]
fn actual_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = omx_lint::check(&root);
    assert!(
        r.is_clean(),
        "the workspace must pass its own lint; violations: {:#?}",
        r.violations
    );
    assert!(r.files_scanned > 30, "walker found the workspace sources");
    // Every waiver carries a justification.
    assert!(r.waivers.iter().all(|w| !w.reason.is_empty()));
    // Pin the exact waiver set: D1 stays a blanket rule with per-site
    // waivers (no harness-crate carve-out). The experiment runner's
    // pool spawn in crates/repro is the single sanctioned `std::thread`
    // site outside crates/sim — its waiver documents why fan-out cannot
    // affect results (grid-order merge, proven across --jobs in
    // crates/repro/tests/runner.rs). Growing this list is an API
    // decision, not a convenience: every new entry needs the same
    // determinism argument.
    let mut waivers: Vec<(String, String)> = r
        .waivers
        .iter()
        .map(|w| (w.rule.clone(), w.file.clone()))
        .collect();
    waivers.sort();
    assert_eq!(
        waivers,
        vec![
            (
                "ad-hoc-rng".to_string(),
                "crates/core/src/cluster.rs".to_string()
            ),
            ("thread".to_string(), "crates/repro/src/pool.rs".to_string()),
        ],
        "unexpected waiver set: {:#?}",
        r.waivers
    );
}
