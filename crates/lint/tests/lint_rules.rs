//! Fixture tests for every omx-lint rule: each rule must fire on its
//! violation fixture, honor its waiver fixture, and stay silent on
//! clean trees — plus the lint must pass on the actual workspace.
//!
//! Fixture trees are checked with [`omx_lint::check_with`] and a
//! fixture-local [`RulesConfig`]: the default config's D5/D6 entry
//! points and D7 knob structs name functions of the *real* workspace,
//! which a fixture tree does not contain (and `entries_missing` would
//! rightly flag). Rules D1–D4 and `waiver-citation` need no entry
//! configuration and run the same either way.

use omx_lint::rules_v2::{KnobStruct, RulesConfig};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Check a fixture with no configured entry points or knob structs.
fn fcheck(name: &str) -> omx_lint::Report {
    let cfg = RulesConfig {
        d5_entries: Vec::new(),
        d6_entries: Vec::new(),
        knobs: Vec::new(),
        doc_files: Vec::new(),
        ..RulesConfig::default()
    };
    fcheck_with(name, &cfg)
}

fn fcheck_with(name: &str, cfg: &RulesConfig) -> omx_lint::Report {
    let r = omx_lint::check_with(&fixture(name), cfg);
    assert!(
        r.entries_missing.is_empty(),
        "fixture config must resolve: {:?}",
        r.entries_missing
    );
    r
}

fn rules(report: &omx_lint::Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule.as_str()).collect()
}

// ------------------------------------------------------------------ D1

#[test]
fn d1_flags_wall_clock_threads_and_adhoc_rng() {
    let r = fcheck("d1_violation");
    let rules = rules(&r);
    assert!(
        rules.contains(&"wall-clock"),
        "violations: {:?}",
        r.violations
    );
    assert!(rules.contains(&"thread"), "violations: {:?}", r.violations);
    assert!(
        rules.contains(&"ad-hoc-rng"),
        "violations: {:?}",
        r.violations
    );
}

#[test]
fn d1_waiver_is_honored_and_reported() {
    let r = fcheck("d1_waived");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "ad-hoc-rng");
    assert!(r.waivers[0].reason.contains("fixture"));
}

// ------------------------------------------------------------------ D2

#[test]
fn d2_flags_hashmap_in_sim_crate() {
    let r = fcheck("d2_violation");
    assert!(!r.is_clean());
    assert!(rules(&r).iter().all(|&s| s == "unordered-iter"));
    assert!(r
        .violations
        .iter()
        .all(|v| v.file.starts_with("crates/core/")));
}

#[test]
fn d2_waiver_is_honored_per_site() {
    let r = fcheck("d2_waived");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 2, "both directives surfaced");
}

#[test]
fn d2_ignores_non_simulation_crates() {
    let r = fcheck("d2_outside");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

#[test]
fn d2_exempts_cfg_test_modules() {
    let r = fcheck("d2_test_mod");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

#[test]
fn d2_flags_aliased_import() {
    // `use std::collections::HashMap as M;` must be caught even though
    // every later use site says only `M`.
    let r = fcheck("d2_alias");
    assert!(!r.is_clean());
    assert!(rules(&r).iter().all(|&s| s == "unordered-iter"));
    assert_eq!(
        r.violations[0].file, "crates/core/src/lib.rs",
        "violations: {:?}",
        r.violations
    );
    assert_eq!(r.violations[0].line, 1, "the aliasing use line is flagged");
}

#[test]
fn d2_follows_pub_use_reexport_chain() {
    // crates/util re-exports HashMap as FastMap; the sim crate imports
    // only `util::FastMap` and never says "HashMap". Token-level D2 is
    // blind here — the resolver must chase the chain.
    let r = fcheck("d2_reexport");
    let hits: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "unordered-iter")
        .collect();
    assert_eq!(hits.len(), 1, "violations: {:?}", r.violations);
    assert_eq!(hits[0].file, "crates/core/src/lib.rs");
    assert!(
        hits[0].message.contains("FastMap")
            && hits[0].message.contains("std::collections::HashMap"),
        "message names both the alias and the resolved target: {}",
        hits[0].message
    );
    // The re-exporting helper crate is outside the simulation path and
    // stays unflagged.
    assert!(r
        .violations
        .iter()
        .all(|v| !v.file.starts_with("crates/util/")));
}

// ------------------------------------------------------------------ D3

#[test]
fn d3_flags_unregistered_counter_and_missing_stats_field() {
    let r = fcheck("d3_violation");
    let counters: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "counters-registry")
        .collect();
    assert_eq!(counters.len(), 2, "violations: {:?}", r.violations);
    assert!(counters.iter().any(|v| v.message.contains("orphan")));
    assert!(counters.iter().any(|v| v.message.contains("Stats")));
}

#[test]
fn d3_clean_registration_passes() {
    let r = fcheck("d3_clean");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

// ------------------------------------------------------------------ D4

#[test]
fn d4_flags_literal_outside_home_and_sanitizer_free_home() {
    let r = fcheck("d4_violation");
    let lifecycle: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "lifecycle-ctor")
        .collect();
    assert_eq!(lifecycle.len(), 2, "violations: {:?}", r.violations);
    assert!(lifecycle
        .iter()
        .any(|v| v.file == "crates/other/src/lib.rs" && v.message.contains("struct-literal")));
    assert!(lifecycle
        .iter()
        .any(|v| v.file == "crates/ethernet/src/skbuff.rs" && v.message.contains("SimSanitizer")));
}

#[test]
fn d4_waiver_honored_when_home_threads_sanitizer() {
    let r = fcheck("d4_waived");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "lifecycle-ctor");
}

// ------------------------------------------------------------------ D5

#[test]
fn d5_flags_allocation_reachable_from_entry() {
    let cfg = RulesConfig {
        d5_entries: vec!["core::Sim::schedule_at".to_string()],
        d5_hops: 2,
        d6_entries: Vec::new(),
        knobs: Vec::new(),
        doc_files: Vec::new(),
        ..RulesConfig::default()
    };
    let r = fcheck_with("d5_hotpath", &cfg);
    let hits: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "hot-path-alloc")
        .collect();
    // One direct hop (vec! in direct_alloc) and one two-hop chain
    // (format! in hop_two via hop_one).
    assert!(
        hits.iter()
            .any(|v| v.message.contains("vec!") && v.message.contains("direct_alloc")),
        "direct allocation flagged: {:?}",
        hits
    );
    assert!(
        hits.iter()
            .any(|v| v.message.contains("format!") && v.message.contains("hop_one")),
        "two-hop allocation flagged with its chain: {:?}",
        hits
    );
}

#[test]
fn d5_hop_budget_bounds_reachability() {
    // With a one-hop budget the two-hop format! is out of range.
    let cfg = RulesConfig {
        d5_entries: vec!["core::Sim::schedule_at".to_string()],
        d5_hops: 1,
        d6_entries: Vec::new(),
        knobs: Vec::new(),
        doc_files: Vec::new(),
        ..RulesConfig::default()
    };
    let r = fcheck_with("d5_hotpath", &cfg);
    assert!(
        r.violations.iter().all(|v| !v.message.contains("format!")),
        "violations: {:?}",
        r.violations
    );
    assert!(
        r.violations.iter().any(|v| v.message.contains("vec!")),
        "the one-hop site is still flagged"
    );
}

// ------------------------------------------------------------------ D6

fn d6_cfg() -> RulesConfig {
    RulesConfig {
        d5_entries: Vec::new(),
        d6_entries: vec!["ethernet::Nic::deliver".to_string()],
        d6_hops: 2,
        knobs: Vec::new(),
        doc_files: Vec::new(),
        ..RulesConfig::default()
    }
}

#[test]
fn d6_flags_unwrap_and_index_on_fast_path() {
    let r = fcheck_with("d6_violation", &d6_cfg());
    let hits: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "fast-path-panic")
        .collect();
    assert_eq!(hits.len(), 2, "violations: {:?}", r.violations);
    assert!(hits.iter().any(|v| v.message.contains("unwrap")));
    assert!(hits.iter().any(|v| v.message.contains("index")));
    // Every finding names its reachability chain from the entry.
    assert!(hits
        .iter()
        .all(|v| v.message.contains("Nic::deliver") && v.message.contains("Nic::pick")));
}

#[test]
fn d6_waiver_with_citation_is_honored() {
    let r = fcheck_with("d6_waived", &d6_cfg());
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    assert_eq!(r.waivers[0].rule, "fast-path-panic");
    assert!(r.waivers[0]
        .reason
        .contains("[test: tests/proof.rs::covers_slot_index]"));
}

// ------------------------------------------------------------------ D7

#[test]
fn d7_flags_missing_default_arm_and_missing_doc() {
    let cfg = RulesConfig {
        d5_entries: Vec::new(),
        d6_entries: Vec::new(),
        knobs: vec![KnobStruct {
            name: "Knobs".to_string(),
            file: "crates/core/src/lib.rs".to_string(),
        }],
        doc_files: vec!["DOCS.md".to_string()],
        ..RulesConfig::default()
    };
    let r = fcheck_with("d7_missing_doc", &cfg);
    let hits: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "config-knob")
        .collect();
    // `beta` is in Default but absent from DOCS.md; `gamma` is in the
    // docs but missing a Default arm. `alpha` is fully covered.
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`Knobs.beta`") && v.message.contains("not documented")),
        "violations: {:?}",
        r.violations
    );
    assert!(
        hits.iter()
            .any(|v| v.message.contains("`Knobs.gamma`") && v.message.contains("Default")),
        "violations: {:?}",
        r.violations
    );
    assert!(
        hits.iter().all(|v| !v.message.contains("`Knobs.alpha`")),
        "violations: {:?}",
        r.violations
    );
}

// ------------------------------------------- waiver citations

#[test]
fn reasonless_waivers_are_rejected() {
    // The d1 violation fixture has no waivers; synthesize the check on
    // the d6 fixture config with citations required (the default) and
    // confirm the waived fixture *with* a citation passes while the
    // same tree minus citations would not: covered by comparing to a
    // config with require_citation disabled.
    let mut cfg = d6_cfg();
    cfg.require_citation = false;
    let r = fcheck_with("d6_waived", &cfg);
    assert!(r.is_clean());
    // With citations required (the shipping default), the fixture still
    // passes because its waiver cites tests/proof.rs::covers_slot_index.
    let r = fcheck_with("d6_waived", &d6_cfg());
    assert!(r.is_clean(), "violations: {:?}", r.violations);
}

// ----------------------------------------------------------- workspace

#[test]
fn clean_tree_is_clean() {
    let r = fcheck("clean");
    assert!(r.is_clean(), "violations: {:?}", r.violations);
    assert!(r.waivers.is_empty());
}

#[test]
fn actual_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = omx_lint::check(&root);
    assert!(
        r.entries_missing.is_empty(),
        "every configured D5/D6 entry point and D7 knob struct must \
         resolve in the workspace: {:?}",
        r.entries_missing
    );
    assert!(
        r.is_clean(),
        "the workspace must pass its own lint; violations: {:#?}",
        r.violations
    );
    assert!(r.files_scanned > 30, "walker found the workspace sources");
    // Every waiver carries a justification and cites a proving test
    // (`waiver-citation` verified the file and test fn actually exist).
    assert!(r
        .waivers
        .iter()
        .all(|w| !w.reason.is_empty() && w.reason.contains("[test: ")));
    // Pin the exact waiver set. D1 stays a blanket rule with per-site
    // waivers (no harness-crate carve-out); D5/D6 waivers mark the few
    // audited hot-path sites whose safety argument lives in the cited
    // test. Growing this list is an API decision, not a convenience:
    // every new entry needs the same determinism/invariant argument
    // plus a test that proves it.
    let mut counts: std::collections::BTreeMap<(String, String), usize> =
        std::collections::BTreeMap::new();
    for w in &r.waivers {
        *counts.entry((w.rule.clone(), w.file.clone())).or_insert(0) += 1;
    }
    let got: Vec<(String, String, usize)> = counts
        .into_iter()
        .map(|((rule, file), n)| (rule, file, n))
        .collect();
    let own = |r: &str, f: &str, n: usize| (r.to_string(), f.to_string(), n);
    assert_eq!(
        got,
        vec![
            own("ad-hoc-rng", "crates/core/src/cluster.rs", 1),
            own("fast-path-panic", "crates/core/src/cluster.rs", 3),
            own("fast-path-panic", "crates/core/src/driver/pull.rs", 6),
            own("fast-path-panic", "crates/core/src/driver/recv.rs", 1),
            own("fast-path-panic", "crates/ethernet/src/nic.rs", 2),
            own("hot-path-alloc", "crates/core/src/driver/kmatch.rs", 3),
            own("hot-path-alloc", "crates/core/src/driver/mod.rs", 1),
            own("hot-path-alloc", "crates/core/src/driver/recv.rs", 2),
            own("hot-path-alloc", "crates/core/src/endpoint.rs", 1),
            own("hot-path-alloc", "crates/core/src/events.rs", 1),
            own("hot-path-alloc", "crates/core/src/libproc.rs", 2),
            own("hot-path-alloc", "crates/sim/src/engine.rs", 1),
            own("hot-path-alloc", "crates/sim/src/event.rs", 1),
            own("hot-path-alloc", "crates/sim/src/reference.rs", 1),
            own("thread", "crates/repro/src/pool.rs", 1),
        ],
        "unexpected waiver set: {:#?}",
        r.waivers
    );
}

#[test]
fn d5_entries_match_what_alloc_count_checks_dynamically() {
    // The static rule and the dynamic allocation counter must pin the
    // same surface: every default D5 entry on the engine is a method
    // the alloc_count suite drives, so a zero-alloc claim proven at
    // runtime is the same claim D5 checks at rest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let alloc_count = std::fs::read_to_string(root.join("crates/sim/tests/alloc_count.rs"))
        .expect("the dynamic counterpart exists");
    let cfg = RulesConfig::default();
    assert!(!cfg.d5_entries.is_empty());
    for entry in cfg
        .d5_entries
        .iter()
        .filter(|e| e.starts_with("omx_sim::engine::Sim::"))
    {
        let method = entry.rsplit("::").next().unwrap();
        assert!(
            alloc_count.contains(method),
            "D5 entry `{entry}` has no dynamic counterpart in alloc_count.rs"
        );
    }
}

// ----------------------------------------------------------- JSON

#[test]
fn json_output_is_byte_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = omx_lint::check(&root).to_json();
    let b = omx_lint::check(&root).to_json();
    assert_eq!(
        a, b,
        "two runs over the same tree must serialize identically"
    );
    assert!(a.ends_with('\n'), "trailing newline for clean byte-diffs");
}

#[test]
fn json_matches_committed_baseline() {
    // CI byte-diffs `omx-lint --json` against this file; if the test
    // fails, regenerate with
    // `cargo run -p omx-lint -- check --json . > results/golden/lint_baseline.json`
    // and review the diff like any other golden change.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = std::fs::read_to_string(root.join("results/golden/lint_baseline.json"))
        .expect("committed lint baseline exists");
    let now = omx_lint::check(&root).to_json();
    assert_eq!(
        now, baseline,
        "lint report drifted from results/golden/lint_baseline.json"
    );
}

#[test]
fn finding_ids_are_stable_across_line_moves() {
    // Same rule/file/message, different line: the id must not change.
    let r1 = fcheck("d1_violation");
    let v = r1
        .violations
        .iter()
        .find(|v| v.rule == "ad-hoc-rng")
        .expect("fixture fires");
    assert_eq!(v.id.len(), 16, "fnv1a64 hex id: {:?}", v.id);
    assert!(v.id.chars().all(|c| c.is_ascii_hexdigit()));
}
