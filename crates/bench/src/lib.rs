//! Shared helpers for the figure-regenerator binaries.
//!
//! Each `fig*` binary reproduces one figure of the paper: it sweeps the
//! same x-axis, runs the corresponding harness for every curve, prints
//! an aligned table (and optionally JSON via `--json` for
//! EXPERIMENTS.md) and states the qualitative shape the paper reports.

use omx_sim::stats::Series;
use rayon::prelude::*;

/// Run `f` over `sizes` in parallel (each point is an independent,
/// deterministic simulation) and collect an x-sorted series.
pub fn sweep_series<F>(name: &str, sizes: &[u64], f: F) -> Series
where
    F: Fn(u64) -> f64 + Sync,
{
    let ys: Vec<(u64, f64)> = sizes.par_iter().map(|&s| (s, f(s))).collect();
    let mut series = Series::new(name);
    for (x, y) in ys {
        series.push(x as f64, y);
    }
    series
}

/// Print a figure header.
pub fn banner(fig: &str, caption: &str) {
    println!("==================================================================");
    println!("{fig}: {caption}");
    println!("==================================================================");
}

/// Print the shared-x table for a set of series.
pub fn print_table(series: &[Series], x_label: &str) {
    print!("{}", Series::table(series, x_label));
}

/// Emit the series as JSON on request (`--json` flag), for archival in
/// EXPERIMENTS.md.
pub fn maybe_json(series: &[Series]) {
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(series).expect("serialize")
        );
    }
}

/// Emit one labelled component breakdown as a single JSON line.
///
/// Every fig binary prints at least one of these for a representative
/// configuration, so the per-component time accounting (wire, BH
/// memcpy, I/OAT channel, submit CPU, idle) is machine-readable
/// without `--json`.
pub fn print_breakdown<T: serde::Serialize>(label: &str, breakdown: &T) {
    println!(
        "{{\"component_breakdown\":{{\"label\":{:?},\"data\":{}}}}}",
        label,
        serde_json::to_string(breakdown).expect("serialize")
    );
}
