//! Shared helpers for the figure-regenerator binaries.
//!
//! The per-figure sweep/table/breakdown machinery moved into the
//! `omx-repro` grid runner (crates/repro), which regenerates every
//! committed results file deterministically in parallel; the `fig*`
//! binaries are now thin shims over it. Only the `--json` series dump
//! lives here.

use omx_sim::stats::Series;

/// Emit the series as JSON on request (`--json` flag), for archival in
/// EXPERIMENTS.md.
pub fn maybe_json(series: &[Series]) {
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(series).expect("serialize")
        );
    }
}
