//! Figure 3 — expected Open-MX improvement when removing the receive
//! copy from the bottom half.
//!
//! Three curves over 16 B … 4 MB ping-pong: native MX, Open-MX, and
//! the counterfactual Open-MX with the BH receive copy charged at zero
//! cost. The paper's point: without the copy, line rate is achievable
//! — which motivates offloading it.

use omx_bench::{banner, maybe_json, print_breakdown, print_table, sweep_series};
use omx_hw::CoreId;
use omx_mx::curve::pingpong_throughput_mibs;
use open_mx::cluster::ClusterParams;
use open_mx::harness::{run_pingpong, size_sweep, PingPongConfig, Placement};

fn omx_rate(size: u64, ignore_bh_copy: bool) -> f64 {
    let mut params = ClusterParams::default();
    params.cfg.ignore_bh_copy = ignore_bh_copy;
    let cfg = PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    let r = run_pingpong(cfg);
    assert!(r.verified, "payload corruption at {size} B");
    r.throughput_mibs
}

fn main() {
    banner(
        "Figure 3",
        "MX vs Open-MX vs Open-MX ignoring the BH receive copy (ping-pong MiB/s)",
    );
    let sizes = size_sweep(4 << 20);
    let mx_params = omx_mx::MxParams::default();
    let link = omx_ethernet::LinkParams::default();
    let mx = sweep_series("MX", &sizes, |s| {
        pingpong_throughput_mibs(&mx_params, &link, s)
    });
    let omx_nocopy = sweep_series("Open-MX ignoring BH copy", &sizes, |s| omx_rate(s, true));
    let omx = sweep_series("Open-MX", &sizes, |s| omx_rate(s, false));
    let all = vec![mx, omx_nocopy, omx];
    print_table(&all, "size");
    println!();
    println!("Paper shape: MX ≈1140 MiB/s large; Open-MX plateaus near 800 MiB/s;");
    println!("the no-copy counterfactual approaches line rate (1186 MiB/s).");
    let r = run_pingpong(PingPongConfig::new(
        ClusterParams::default(),
        4 << 20,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    print_breakdown("Open-MX pingpong 4MB", &r.breakdown);
    maybe_json(&all);
}
