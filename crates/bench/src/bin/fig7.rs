//! Figure 7 — pipelined memcpy vs I/OAT copy throughput for 256 B,
//! 1 kB and 4 kB chunks, copy sizes 256 B … 1 MB.

use omx_bench::{banner, maybe_json, print_breakdown, print_table, sweep_series};
use omx_hw::HwParams;
use open_mx::harness::copybench::{copy_breakdown, copy_rate_mibs, CopyEngine};

fn main() {
    banner(
        "Figure 7",
        "Pipelined memcpy vs I/OAT copy throughput by chunk size (MiB/s)",
    );
    let hw = HwParams::default();
    let mut sizes = Vec::new();
    let mut s = 256u64;
    while s <= 1 << 20 {
        sizes.push(s);
        s *= 2;
    }
    let mut all = Vec::new();
    for (label, chunk) in [
        ("4kB chunks (page)", 4096u64),
        ("1kB chunks", 1024),
        ("256B chunks", 256),
    ] {
        all.push(sweep_series(
            &format!("Memcpy - {label}"),
            &sizes,
            |total| copy_rate_mibs(&hw, CopyEngine::Memcpy, total, chunk.min(total)),
        ));
    }
    for (label, chunk) in [
        ("4kB chunks (page)", 4096u64),
        ("1kB chunks", 1024),
        ("256B chunks", 256),
    ] {
        all.push(sweep_series(
            &format!("I/OAT Copy - {label}"),
            &sizes,
            |total| copy_rate_mibs(&hw, CopyEngine::Ioat, total, chunk.min(total)),
        ));
    }
    print_table(&all, "copy size");
    println!();
    println!("Paper shape: 4kB-chunk I/OAT sustains ≈2.4 GiB/s vs memcpy ≈1.5 GiB/s;");
    println!("1kB chunks sit near parity; 256B-chunk I/OAT collapses below memcpy.");
    let ioat4k = copy_rate_mibs(&hw, CopyEngine::Ioat, 1 << 20, 4096);
    let mc4k = copy_rate_mibs(&hw, CopyEngine::Memcpy, 1 << 20, 4096);
    println!(
        "1MB / 4kB chunks: I/OAT {:.2} GiB/s, memcpy {:.2} GiB/s",
        ioat4k / 1024.0,
        mc4k / 1024.0
    );
    print_breakdown(
        "I/OAT copy 1MB/4kB chunks",
        &copy_breakdown(&hw, CopyEngine::Ioat, 1 << 20, 4096),
    );
    print_breakdown(
        "memcpy 1MB/4kB chunks",
        &copy_breakdown(&hw, CopyEngine::Memcpy, 1 << 20, 4096),
    );
    maybe_json(&all);
}
