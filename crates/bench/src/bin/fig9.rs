//! Figure 9 — receiver CPU usage while receiving a stream of
//! synchronous large messages, with and without overlapped DMA copy.
//!
//! Two panels (memcpy / overlapped DMA), three stacked categories each:
//! bottom-half receive, driver (commands + pinning), user library. The
//! paper's headline: the memcpy BH saturates a core near 95 % for
//! multi-megabyte messages; overlapped offload drops overall usage to
//! ≈60 % while *increasing* throughput.

use omx_bench::{banner, print_breakdown};
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_stream, StreamConfig};

fn panel(title: &str, cfg_fn: impl Fn() -> OmxConfig) {
    println!("--- {title} ---");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "size", "%BH", "%driver", "%user-lib", "MiB/s"
    );
    for size in [64u64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20] {
        let params = ClusterParams::with_cfg(cfg_fn());
        let sc = StreamConfig::new(params, size);
        let r = run_stream(sc);
        assert!(r.verified, "corruption at {size}");
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            omx_sim::stats::format_bytes(size as f64),
            r.bh_util * 100.0,
            r.driver_util * 100.0,
            r.user_util * 100.0,
            r.throughput_mibs
        );
    }
    println!();
}

fn main() {
    banner(
        "Figure 9",
        "Receiver CPU usage per category for a unidirectional large-message stream",
    );
    panel("BH receive with Memcpy", OmxConfig::default);
    panel("BH receive with Overlapped DMA Copy", OmxConfig::with_ioat);
    println!("Paper shape: memcpy BH rises to ≈95 % for multi-MB messages;");
    println!("overlapped DMA drops overall receive CPU to ≈60 % at higher throughput.");
    for (label, cfg) in [
        ("memcpy stream 4MB", OmxConfig::default()),
        ("overlapped-DMA stream 4MB", OmxConfig::with_ioat()),
    ] {
        let r = run_stream(StreamConfig::new(ClusterParams::with_cfg(cfg), 4 << 20));
        print_breakdown(label, &r.breakdown);
    }
}
