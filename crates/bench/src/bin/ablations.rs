//! Ablations of the design choices DESIGN.md calls out, each mapping
//! to a discussion point in the paper (§V/§VI):
//!
//! * paper-fixed vs auto-tuned offload thresholds,
//! * busy-poll vs sleep-until-predicted-completion for synchronous
//!   copies,
//! * one-channel-per-message vs splitting a copy across channels,
//! * cache-warming head copy before offloading,
//! * library-level vs in-driver (kernel) matching for medium messages,
//! * medium-path synchronous I/OAT (the measured degradation).

use omx_bench::{banner, print_breakdown};
use omx_hw::CoreId;
use open_mx::autotune;
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, SyncWaitPolicy};
use open_mx::fault::FaultPlan;
use open_mx::harness::{
    run_pingpong, run_stream, PingPongConfig, PingPongResult, Placement, StreamConfig,
};

fn net_rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    ));
    assert!(r.verified);
    r.throughput_mibs
}

fn shm_rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b: CoreId(4),
        },
    ));
    assert!(r.verified);
    r.throughput_mibs
}

fn main() {
    banner("Ablations", "design-choice studies from §V/§VI");

    // ---- auto-tuned thresholds ------------------------------------
    println!("--- thresholds: paper-fixed vs auto-tuned (§VI) ---");
    let tuned = autotune::calibrate(&omx_hw::HwParams::default(), &OmxConfig::default());
    println!("auto-tuned: {tuned:?}");
    for size in [64u64 << 10, 256 << 10, 1 << 20] {
        let fixed = net_rate(size, OmxConfig::with_ioat());
        let mut cfg = OmxConfig::with_ioat();
        autotune::apply(&mut cfg, tuned);
        let auto = net_rate(size, cfg);
        println!(
            "  net {:>6}: fixed {:7.1} MiB/s | auto-tuned {:7.1} MiB/s",
            omx_sim::stats::format_bytes(size as f64),
            fixed,
            auto
        );
    }

    // ---- sync wait policy ------------------------------------------
    println!();
    println!("--- shm sync copy: busy-poll vs sleep-until-predicted (§VI) ---");
    for size in [2u64 << 20, 8 << 20] {
        let mk = |wait| OmxConfig {
            sync_wait: wait,
            ioat_shm_threshold: 1 << 20,
            ..OmxConfig::with_ioat()
        };
        let busy_cfg = mk(SyncWaitPolicy::BusyPoll);
        let sleep_cfg = mk(SyncWaitPolicy::SleepPredicted);
        let busy = shm_rate(size, busy_cfg);
        let sleep = shm_rate(size, sleep_cfg);
        println!(
            "  {:>5}: busy-poll {:7.1} MiB/s | sleep-predicted {:7.1} MiB/s",
            omx_sim::stats::format_bytes(size as f64),
            busy,
            sleep
        );
    }

    // ---- multi-channel split ----------------------------------------
    println!();
    println!("--- shm copy: one channel vs split across 4 channels (§V, [22]) ---");
    for size in [2u64 << 20, 8 << 20] {
        let single = shm_rate(
            size,
            OmxConfig {
                ioat_shm_threshold: 1 << 20,
                ..OmxConfig::with_ioat()
            },
        );
        let multi = shm_rate(
            size,
            OmxConfig {
                ioat_shm_threshold: 1 << 20,
                ioat_multichannel_split: true,
                ..OmxConfig::with_ioat()
            },
        );
        println!(
            "  {:>5}: single-channel {:7.1} MiB/s | 4-channel split {:7.1} MiB/s ({:+.0} %)",
            omx_sim::stats::format_bytes(size as f64),
            single,
            multi,
            (multi / single - 1.0) * 100.0
        );
    }

    // ---- warm-copy head ----------------------------------------------
    println!();
    println!("--- warm-copy head: memcpy the first bytes, offload the rest (§V) ---");
    for head in [0u64, 16 << 10, 64 << 10] {
        let rate = net_rate(
            1 << 20,
            OmxConfig {
                warm_copy_head_bytes: head,
                ..OmxConfig::with_ioat()
            },
        );
        println!(
            "  head {:>5}: 1MB ping-pong {:7.1} MiB/s",
            omx_sim::stats::format_bytes(head as f64),
            rate
        );
    }

    // ---- medium-path options ----------------------------------------
    println!();
    println!("--- medium messages (16 kB): ring path vs sync-I/OAT vs kernel matching ---");
    let base = net_rate(16 << 10, OmxConfig::default());
    let sync = net_rate(
        16 << 10,
        OmxConfig {
            ioat_medium_sync: true,
            ..OmxConfig::with_ioat()
        },
    );
    let kmatch = net_rate(
        16 << 10,
        OmxConfig {
            kernel_matching: true,
            ..OmxConfig::with_ioat()
        },
    );
    println!("  library matching + memcpy ring:   {base:7.1} MiB/s (the paper's stack)");
    println!("  + synchronous I/OAT ring copies:  {sync:7.1} MiB/s (paper observed a degradation)");
    println!("  in-driver matching + async I/OAT: {kmatch:7.1} MiB/s (§VI future work)");

    // ---- vectorial receive buffers ----------------------------------
    println!();
    println!("--- vectorial receive buffers (§IV-A: tiny chunks vs the threshold) ---");
    {
        use omx_sim::{Ps, Sim};
        use open_mx::app::{App, AppCtx, Completion};
        use open_mx::cluster::Cluster;
        use open_mx::{EpAddr, EpIdx, NodeId};
        use std::cell::Cell;
        use std::rc::Rc;

        struct VecSender {
            peer: EpAddr,
        }
        impl App for VecSender {
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                ctx.isend(self.peer, 1, vec![5u8; 1 << 20], Some(1));
            }
            fn on_completion(&mut self, _ctx: &mut AppCtx<'_>, _c: Completion) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        struct VecReceiver {
            seg: u64,
            done_at: Rc<Cell<Ps>>,
        }
        impl App for VecReceiver {
            fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
                ctx.irecv_vectored(1, u64::MAX, 1 << 20, self.seg, Some(2));
            }
            fn on_completion(&mut self, ctx: &mut AppCtx<'_>, c: Completion) {
                if matches!(c, Completion::Recv { .. }) {
                    self.done_at.set(ctx.now());
                }
            }
            fn is_done(&self) -> bool {
                self.done_at.get() > Ps::ZERO
            }
        }
        let run = |seg: u64, frag_threshold: u64| {
            let done_at = Rc::new(Cell::new(Ps::ZERO));
            let params = ClusterParams::with_cfg(OmxConfig {
                ioat_frag_threshold: frag_threshold,
                ..OmxConfig::with_ioat()
            });
            let mut cluster = Cluster::new(params);
            let mut sim: Sim<Cluster> = Sim::new();
            let peer = EpAddr {
                node: NodeId(1),
                ep: EpIdx(0),
            };
            cluster.add_endpoint(NodeId(0), CoreId(2), Box::new(VecSender { peer }));
            cluster.add_endpoint(
                NodeId(1),
                CoreId(2),
                Box::new(VecReceiver {
                    seg,
                    done_at: done_at.clone(),
                }),
            );
            cluster.start(&mut sim);
            sim.run(&mut cluster);
            let offloaded = cluster.ep(peer).counters.copies_offloaded;
            (done_at.get(), offloaded)
        };
        for (label, seg) in [
            ("contiguous", u64::MAX),
            ("4kB segments", 4096),
            ("256B segments", 256),
        ] {
            let (with_threshold, off_a) = run(seg, 1 << 10);
            let (forced, off_b) = run(seg, 1);
            println!(
                "  {label:>14}: 1kB threshold {:>10} ({off_a:>4} offloads) | forced offload {:>10} ({off_b:>4} offloads)",
                format!("{with_threshold}"),
                format!("{forced}"),
            );
        }
        println!("  Tiny chunks make forced offload pay ~350 ns per 256 B descriptor;");
        println!("  the 1 kB fragment threshold falls back to memcpy and stays fast.");
    }

    // ---- DCA ----------------------------------------------------------
    println!();
    println!("--- Direct Cache Access (§II-C): warm-source BH copies, no offload ---");
    for (label, dca) in [("DCA off", false), ("DCA on ", true)] {
        let rate = net_rate(
            4 << 20,
            OmxConfig {
                dca_enabled: dca,
                ..OmxConfig::default()
            },
        );
        println!("  {label}: 4MB ping-pong {rate:7.1} MiB/s");
    }
    println!("  DCA lifts the memcpy plateau but cannot reach the overlap of the");
    println!("  asynchronous offload — the two I/OAT features are complementary.");

    // ---- fault injection: graceful degradation ----------------------
    println!();
    println!("--- fault injection: lossless wire vs the flaky-10g plan ---");
    {
        let run = |plan: FaultPlan| -> PingPongResult {
            let cfg = OmxConfig {
                fault_plan: plan,
                regcache: false,
                ..OmxConfig::with_ioat()
            };
            let mut pp = PingPongConfig::new(
                ClusterParams::with_cfg(cfg),
                1 << 20,
                Placement::TwoNodes {
                    core_a: CoreId(2),
                    core_b: CoreId(2),
                },
            );
            pp.iters = 12;
            let r = run_pingpong(pp);
            assert!(r.verified, "fault run failed verification");
            assert_eq!(r.end_skbuffs_held, 0, "leaked skbuffs under faults");
            assert_eq!(
                r.end_pinned_regions, 0,
                "leaked pinned regions under faults"
            );
            r
        };
        let clean = run(FaultPlan::default());
        let flaky = run(FaultPlan::flaky_10g());
        println!(
            "  lossless:  1MB ping-pong {:7.1} MiB/s",
            clean.throughput_mibs
        );
        println!(
            "  flaky-10g: 1MB ping-pong {:7.1} MiB/s ({:.1}x slower, verified, no leaks)",
            flaky.throughput_mibs,
            clean.throughput_mibs / flaky.throughput_mibs
        );
        print_breakdown("flaky-10g recovery counters", &flaky.stats);
        println!("  Bursty loss, duplication, corruption and a stalled I/OAT channel");
        println!("  degrade throughput but never correctness: retransmit timeouts back");
        println!("  off adaptively and stuck copies are rescued onto the CPU.");
    }

    // ---- CPU effect of the overlap (stream form) --------------------
    println!();
    println!("--- receive stream 1MB: CPU relief recap ---");
    for (label, cfg) in [
        ("memcpy", OmxConfig::default()),
        ("I/OAT", OmxConfig::with_ioat()),
    ] {
        let p = ClusterParams::with_cfg(cfg);
        let r = run_stream(StreamConfig::new(p, 1 << 20));
        println!(
            "  {label:>6}: BH {:4.1} % driver {:4.1} % @ {:7.1} MiB/s (skbuffs held peak {})",
            r.bh_util * 100.0,
            r.driver_util * 100.0,
            r.throughput_mibs,
            r.max_skbuffs_held
        );
        print_breakdown(&format!("{label} stream 1MB"), &r.breakdown);
    }
}
