//! §IV-A micro-benchmark numbers (the paper's "table" of calibration
//! constants): descriptor submission cost, completion-check cost,
//! memcpy rates, and the memcpy/I/OAT break-even points.

use omx_bench::{banner, print_breakdown};
use omx_hw::{HwParams, IoatEngine};
use omx_sim::Ps;
use open_mx::autotune;
use open_mx::config::OmxConfig;
use open_mx::harness::copybench::{
    copy_breakdown, copy_rate_mibs, cpu_breakeven_bytes, CopyEngine,
};

fn main() {
    banner(
        "§IV-A micro-benchmarks",
        "submission/completion costs, copy rates and break-even points",
    );
    let hw = HwParams::default();
    println!(
        "I/OAT descriptor submission (CPU):        {}   (paper: ~350 ns)",
        hw.ioat_submit_cpu
    );
    println!(
        "I/OAT completion check (in-order word):   {}    (paper: negligible)",
        hw.ioat_poll_cost
    );
    println!(
        "memcpy rate, uncached:                    {:7.2} GiB/s (paper: ~1.6 GiB/s)",
        hw.memcpy_rate_uncached.as_mib_per_sec() / 1024.0
    );
    println!(
        "memcpy rate, cache-resident:              {:7.2} GiB/s (paper: up to 12 GiB/s)",
        hw.memcpy_rate_cached.as_mib_per_sec() / 1024.0
    );
    println!(
        "I/OAT sustained, 4 kB descriptors:        {:7.2} GiB/s (paper: ~2.4 GiB/s)",
        copy_rate_mibs(&hw, CopyEngine::Ioat, 16 << 20, 4096) / 1024.0
    );
    println!(
        "memcpy sustained, 4 kB chunks:            {:7.2} GiB/s (paper: ~1.5 GiB/s)",
        copy_rate_mibs(&hw, CopyEngine::Memcpy, 16 << 20, 4096) / 1024.0
    );
    println!(
        "CPU break-even (memcpy vs one submit):    {:>6} B    (paper: ~600 B)",
        cpu_breakeven_bytes(&hw)
    );
    // Cached break-even: how much can the shared-cache memcpy move in
    // one submission time.
    let mut cached_be = 64u64;
    while hw.memcpy_rate_shared_cache_pair.time_for(cached_be) < hw.ioat_submit_cpu {
        cached_be += 64;
    }
    println!("cached break-even:                        {cached_be:>6} B    (paper: ~2 kB)");
    println!(
        "submit cost for a 1 MB copy (256 desc):   {}  of CPU time",
        IoatEngine::submit_cpu_cost(&hw, 256)
    );
    println!();
    let t = autotune::calibrate(&hw, &OmxConfig::default());
    println!("auto-tuned thresholds (extension, §VI):");
    println!(
        "  fragment ≥ {} B (paper: 1 kB), network message ≥ {} kB (paper: 64 kB), shm ≥ {} kB (paper: 1 MB)",
        t.frag_threshold,
        t.net_msg_threshold >> 10,
        t.shm_threshold >> 10
    );
    let one_page = hw.ioat_desc_overhead + hw.ioat_raw_rate.time_for(4096);
    println!(
        "one 4 kB descriptor executes in {} (≥ the {} submission: submission pipelines)",
        one_page,
        Ps::ns(350)
    );
    print_breakdown(
        "I/OAT copy 16MB/4kB chunks",
        &copy_breakdown(&hw, CopyEngine::Ioat, 16 << 20, 4096),
    );
}
