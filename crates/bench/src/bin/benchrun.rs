//! Performance trajectory runner (`BENCH_*.json`).
//!
//! Two modes:
//!
//! * default — measure host wall-clock and allocation counts for the
//!   scheduler microbenches and a fixed end-to-end workload per figure
//!   family (ping-pong, stream, all-to-all), and print one JSON report.
//!   These numbers feed `BENCH_pr4.json`; they are *host* measurements
//!   and vary run to run, so they are never byte-compared.
//! * `--smoke` — run the same end-to-end workloads in a cheap fixed
//!   configuration and print only their deterministic simulation
//!   fingerprints (Stats + component breakdown JSON). CI byte-compares
//!   this output against `results/golden/perf_smoke.json`: any
//!   scheduler reordering, stray wall-clock read or unordered
//!   iteration shows up as a diff.
//!
//! Wall-clock numbers are meaningful only from `--release` builds (the
//! debug `SimSanitizer` is compiled out there; see EXPERIMENTS.md).

use omx_hw::ioat::CopySegment;
use omx_hw::{CoreId, HwParams, IoatEngine};
use omx_mpi::runner::{run_kernel, KernelResult, Layout};
use omx_mpi::Kernel;
use omx_sim::sanitize::SimSanitizer;
use omx_sim::walltime::Stopwatch;
use omx_sim::{Ps, ReferenceSim, Sim};
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::fault::FaultPlan;
use open_mx::harness::{
    run_fanin, run_incast, run_pingpong, run_stream, FaninConfig, IncastConfig, PingPongConfig,
    Placement, StreamConfig,
};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Counting allocator: every heap allocation (and reallocation) bumps
/// one relaxed counter. Zero-overhead enough to leave on for the whole
/// run; the engine microbenches read deltas around a measured section.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: AllocLayout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: AllocLayout, n: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Relaxed)
}

/// The engine under measurement (recorded in the report so before/after
/// JSON blobs are self-describing).
const ENGINE: &str = "timing-wheel";

const SEED: u64 = 17;

fn fixed_cfg() -> OmxConfig {
    OmxConfig {
        seed: SEED,
        regcache: false,
        ..OmxConfig::with_ioat()
    }
}

// ---------------------------------------------------------------------
// Engine microbenches
// ---------------------------------------------------------------------

struct EngineBench {
    name: &'static str,
    events: u64,
    best_secs: f64,
    median_secs: f64,
    allocs_per_event: f64,
    /// Same shape driven through [`ReferenceSim`] (the original
    /// `BinaryHeap` engine), interleaved repeat-for-repeat with the
    /// wheel so both see the same machine conditions.
    reference_best_secs: f64,
    reference_median_secs: f64,
}

impl EngineBench {
    fn json(&self) -> String {
        let eps = self.events as f64 / self.best_secs;
        let ns_per_event = self.best_secs * 1e9 / self.events as f64;
        let ref_ns = self.reference_best_secs * 1e9 / self.events as f64;
        format!(
            "{{\"name\":\"{}\",\"events\":{},\"best_secs\":{:.6},\"median_secs\":{:.6},\
             \"events_per_sec\":{:.0},\"ns_per_event\":{:.1},\"allocs_per_event\":{:.3},\
             \"reference_best_secs\":{:.6},\"reference_median_secs\":{:.6},\
             \"reference_ns_per_event\":{:.1},\"speedup_vs_reference\":{:.2}}}",
            self.name,
            self.events,
            self.best_secs,
            self.median_secs,
            eps,
            ns_per_event,
            self.allocs_per_event,
            self.reference_best_secs,
            self.reference_median_secs,
            ref_ns,
            self.reference_best_secs / self.best_secs,
        )
    }
}

/// Time one schedule+run shape on both engines, interleaving repeats
/// (wheel, heap, wheel, heap, …) so transient machine load hits both
/// fairly. Reports best and median wall time for each plus the wheel's
/// allocation delta on its final pass.
fn engine_bench(
    name: &'static str,
    repeats: usize,
    wheel_iter: impl Fn() -> u64,
    heap_iter: impl Fn() -> u64,
) -> EngineBench {
    let mut wheel_times = Vec::with_capacity(repeats);
    let mut heap_times = Vec::with_capacity(repeats);
    let mut events = 0;
    let mut allocs = 0.0;
    for rep in 0..repeats {
        let a0 = allocations();
        let sw = Stopwatch::start();
        events = wheel_iter();
        wheel_times.push(sw.elapsed_secs());
        if rep + 1 == repeats {
            allocs = (allocations() - a0) as f64 / events as f64;
        }
        let sw = Stopwatch::start();
        let ref_events = heap_iter();
        heap_times.push(sw.elapsed_secs());
        assert_eq!(events, ref_events, "engines disagree on event count");
    }
    wheel_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    heap_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    EngineBench {
        name,
        events,
        best_secs: wheel_times[0],
        median_secs: wheel_times[wheel_times.len() / 2],
        allocs_per_event: allocs,
        reference_best_secs: heap_times[0],
        reference_median_secs: heap_times[heap_times.len() / 2],
    }
}

/// Expand one bench body for both engine types (they share the
/// scheduling API verbatim, so the shape is written once). An
/// optional leading argument sets the wheel depth for the `Sim` side;
/// the reference heap has no levels.
macro_rules! on_both {
    (|$sim:ident| $body:block) => {
        on_both!(1, |$sim| $body)
    };
    ($levels:expr, |$sim:ident| $body:block) => {
        (
            || {
                let mut $sim: Sim<u64> = Sim::with_wheel_levels($levels);
                $body
            },
            || {
                let mut $sim: ReferenceSim<u64> = ReferenceSim::new();
                $body
            },
        )
    };
}

fn engine_benches(scale: u64) -> Vec<EngineBench> {
    let n = 10_000 * scale;
    let reps = 9;
    let mut out = Vec::new();
    // Mirror of the Criterion `sim_engine_schedule_run_10k` shape:
    // distinct nanosecond timestamps, trivial closures.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        for i in 0..n {
            sim.schedule_at(Ps::ns(i), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_distinct_ns", reps, w, h));
    // Everything at one instant: pure FIFO-bucket throughput.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        for _ in 0..n {
            sim.schedule_at(Ps::us(3), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_same_instant", reps, w, h));
    // Far-future timers: 3 µs strides spread the events over ~30 ms of
    // simulated time, so all but the first handful land beyond the
    // ~67 µs level-0 horizon — the retransmit-timer regime PR-4
    // recorded at ~0.6× vs the heap when every such event paid a boxed
    // overflow node. With two wheel levels the whole span fits the
    // ~34 ms coarse ring: slab-resident, allocation-free.
    let (w, h) = on_both!(2, |sim| {
        let mut world = 0u64;
        for i in 0..n {
            sim.schedule_at(Ps::us(3 * (1 + i)), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_far_future", reps, w, h));
    // Same shape on the single-level wheel: the boxed overflow-heap
    // cost the second level exists to remove, kept as the A/B record.
    let (w, h) = on_both!(1, |sim| {
        let mut world = 0u64;
        for i in 0..n {
            sim.schedule_at(Ps::us(3 * (1 + i)), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_far_future_one_level", reps, w, h));
    // Cancel-heavy timer workload: retransmit-style timers where most
    // are revoked before they fire.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        let mut ids = Vec::with_capacity(n as usize);
        for i in 0..n {
            ids.push(sim.schedule_at_cancellable(Ps::ns(10 + i), |w: &mut u64, _| *w += 1));
        }
        for (i, id) in ids.into_iter().enumerate() {
            if i % 4 != 0 {
                sim.cancel(id);
            }
        }
        sim.run(&mut world);
        world + n // survivors + scheduled: identical across engines
    });
    out.push(engine_bench("engine_cancel_heavy", reps, w, h));
    out
}

/// Self-rescheduling chain: steady-state `schedule_in` from inside
/// handlers, the dominant shape of the protocol simulations. Written
/// outside `on_both!` because the handler names its own engine type.
fn chain_benches(n: u64, reps: usize) -> EngineBench {
    let wheel = move || {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        fn tick(limit: u64) -> impl Fn(&mut u64, &mut Sim<u64>) {
            move |w, sim| {
                *w += 1;
                if *w < limit {
                    sim.schedule_in(Ps::ns(120), tick(limit));
                }
            }
        }
        sim.schedule_at(Ps::ZERO, tick(n));
        sim.run(&mut world);
        world
    };
    let heap = move || {
        let mut sim: ReferenceSim<u64> = ReferenceSim::new();
        let mut world = 0u64;
        fn tick(limit: u64) -> impl Fn(&mut u64, &mut ReferenceSim<u64>) {
            move |w, sim| {
                *w += 1;
                if *w < limit {
                    sim.schedule_in(Ps::ns(120), tick(limit));
                }
            }
        }
        sim.schedule_at(Ps::ZERO, tick(n));
        sim.run(&mut world);
        world
    };
    engine_bench("engine_reschedule_chain", reps, wheel, heap)
}

// ---------------------------------------------------------------------
// Doorbell-batch microbench
// ---------------------------------------------------------------------

/// Host cost of driving the I/OAT engine model — N single-descriptor
/// submissions (one doorbell each) versus the same N as one chained
/// batch — plus the *simulated* submitting-CPU charge both ways. The
/// modeled numbers are equal at the default calibration
/// (`ioat_desc_chain_cpu == ioat_submit_cpu`) and diverge as the chain
/// cost drops; the `batch_doorbell` experiment sweeps that axis.
struct DoorbellBench {
    descriptors: u64,
    sequential_best_secs: f64,
    batched_best_secs: f64,
    modeled_sequential_us: f64,
    modeled_batched_default_us: f64,
    modeled_batched_chain35_us: f64,
}

impl DoorbellBench {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"ioat_doorbell_batch\",\"descriptors\":{},\
             \"sequential_best_secs\":{:.6},\"batched_best_secs\":{:.6},\
             \"host_speedup\":{:.2},\"modeled_sequential_us\":{:.2},\
             \"modeled_batched_default_us\":{:.2},\
             \"modeled_batched_chain35_us\":{:.2}}}",
            self.descriptors,
            self.sequential_best_secs,
            self.batched_best_secs,
            self.sequential_best_secs / self.batched_best_secs,
            self.modeled_sequential_us,
            self.modeled_batched_default_us,
            self.modeled_batched_chain35_us,
        )
    }
}

fn doorbell_bench(reps: usize) -> DoorbellBench {
    let hw = HwParams::default();
    let n: u64 = 1024;
    let frag: u64 = 4096;
    let mut seq_times = Vec::with_capacity(reps);
    let mut bat_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        // One doorbell per descriptor (today's submit sites).
        let mut eng = IoatEngine::new(&hw);
        let mut handles = Vec::with_capacity(n as usize);
        let sw = Stopwatch::start();
        for i in 0..n {
            let ch = (i as usize) % eng.num_channels();
            handles.push(eng.submit(&hw, Ps::ZERO, ch, frag, 1));
        }
        seq_times.push(sw.elapsed_secs());
        for h in &handles {
            SimSanitizer::complete(h.san);
            SimSanitizer::release(h.san);
        }
        // One chained ring, one doorbell.
        let mut eng = IoatEngine::new(&hw);
        let segments: Vec<CopySegment> = (0..n)
            .map(|i| CopySegment {
                channel: (i as usize) % eng.num_channels(),
                bytes: frag,
                descriptors: 1,
            })
            .collect();
        let mut out = Vec::with_capacity(n as usize);
        let sw = Stopwatch::start();
        eng.submit_batch(&hw, Ps::ZERO, &segments, &mut out);
        bat_times.push(sw.elapsed_secs());
        for h in &out {
            SimSanitizer::complete(h.san);
            SimSanitizer::release(h.san);
        }
    }
    seq_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    bat_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let us = |p: Ps| p.as_secs_f64() * 1e6;
    let cheap = HwParams {
        ioat_desc_chain_cpu: Ps::ns(35),
        ..HwParams::default()
    };
    DoorbellBench {
        descriptors: n,
        sequential_best_secs: seq_times[0],
        batched_best_secs: bat_times[0],
        modeled_sequential_us: us(IoatEngine::submit_cpu_cost(&hw, n)),
        modeled_batched_default_us: us(IoatEngine::submit_cpu_cost_batched(&hw, n, true)),
        modeled_batched_chain35_us: us(IoatEngine::submit_cpu_cost_batched(&cheap, n, true)),
    }
}

// ---------------------------------------------------------------------
// End-to-end workloads (one per figure family)
// ---------------------------------------------------------------------

struct E2eBench {
    name: &'static str,
    wall_best_secs: f64,
    wall_median_secs: f64,
    allocs_total: u64,
    sim_end: Ps,
    throughput_mibs: f64,
    /// Engine events the run executed (deterministic).
    events_executed: u64,
}

impl E2eBench {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"wall_best_secs\":{:.4},\"wall_median_secs\":{:.4},\
             \"allocs_total\":{},\"sim_end_ns\":{},\"throughput_mibs\":{:.1},\
             \"events_executed\":{},\"events_per_sec\":{:.0}}}",
            self.name,
            self.wall_best_secs,
            self.wall_median_secs,
            self.allocs_total,
            self.sim_end.0 / 1000,
            self.throughput_mibs,
            self.events_executed,
            self.events_executed as f64 / self.wall_best_secs,
        )
    }
}

fn e2e_bench(name: &'static str, repeats: usize, run: impl Fn() -> (Ps, f64, u64)) -> E2eBench {
    let mut times = Vec::with_capacity(repeats);
    let mut sim_end = Ps::ZERO;
    let mut throughput = 0.0;
    let mut allocs_total = 0;
    let mut events_executed = 0;
    for rep in 0..repeats {
        let a0 = allocations();
        let sw = Stopwatch::start();
        let (end, thr, events) = run();
        times.push(sw.elapsed_secs());
        if rep + 1 == repeats {
            sim_end = end;
            throughput = thr;
            allocs_total = allocations() - a0;
            events_executed = events;
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    E2eBench {
        name,
        wall_best_secs: times[0],
        wall_median_secs: times[times.len() / 2],
        allocs_total,
        sim_end,
        throughput_mibs: throughput,
        events_executed,
    }
}

fn pingpong_cfg(iters: u32, cfg: OmxConfig) -> open_mx::harness::PingPongResult {
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(cfg),
        256 << 10,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = iters;
    c.warmup = 1;
    run_pingpong(c)
}

fn pingpong_fixed(iters: u32) -> open_mx::harness::PingPongResult {
    pingpong_cfg(iters, fixed_cfg())
}

fn stream_fixed(count: u32) -> open_mx::harness::StreamResult {
    let mut c = StreamConfig::new(ClusterParams::with_cfg(fixed_cfg()), 1 << 20);
    c.count = count;
    run_stream(c)
}

/// The multi-queue RX path: 4 RSS queues + GRO trains on the
/// 8-sender medium fan-in.
fn fanin_fixed(count: u32) -> open_mx::harness::FaninResult {
    let mut params = ClusterParams::with_cfg(fixed_cfg());
    params.nic.num_queues = 4;
    params.cfg.gro = true;
    let mut c = FaninConfig::new(params, 16 << 10);
    c.count = count;
    run_fanin(c)
}

/// The credit-governed pull path: an 8-sender large-message incast
/// with the receiver budget on, over the 8-slot pressured ring so the
/// AIMD shrink, the grant FIFO and the shed-load path all execute
/// inside the fingerprint.
fn incast_fixed() -> open_mx::harness::IncastResult {
    let mut params = ClusterParams::with_cfg(OmxConfig {
        fault_plan: FaultPlan::ring_pressure(),
        pull_credits: true,
        ..fixed_cfg()
    });
    params.nic.num_queues = 4;
    run_incast(IncastConfig::new(params, 8, 96 << 10, 2))
}

fn alltoall_fixed(iters: u32) -> KernelResult {
    let params = ClusterParams {
        nodes: 2,
        ..ClusterParams::with_cfg(fixed_cfg())
    };
    run_kernel(Kernel::Alltoall, Layout::TwoPerNode, 1 << 20, iters, params)
}

/// The scale cell: a 1024-rank IMB Alltoall (one rank per node, 256 B,
/// the `scale_ablation` workload) under `partitions` shards fanned
/// across as many workers.
fn alltoall_1k(partitions: usize) -> KernelResult {
    let mut params = ClusterParams::with_cfg(fixed_cfg());
    params.partitions = partitions;
    params.partition_workers = partitions;
    run_kernel(Kernel::Alltoall, Layout::Nodes(1024), 256, 2, params)
}

fn e2e_benches() -> Vec<E2eBench> {
    vec![
        e2e_bench("pingpong_256k", 5, || {
            let r = pingpong_fixed(12);
            assert!(r.verified, "pingpong failed verification");
            (r.end_time, r.throughput_mibs, r.events_executed)
        }),
        e2e_bench("stream_1m", 3, || {
            let r = stream_fixed(8);
            assert!(r.verified, "stream failed verification");
            (r.elapsed, r.throughput_mibs, r.events_executed)
        }),
        e2e_bench("alltoall_1m", 3, || {
            let r = alltoall_fixed(2);
            assert!(r.verified, "alltoall failed verification");
            (r.end, 0.0, r.events_executed)
        }),
        e2e_bench("fanin_mq_16k", 3, || {
            let r = fanin_fixed(16);
            assert!(r.verified, "fan-in failed verification");
            (r.elapsed, r.throughput_mibs, r.events_executed)
        }),
        e2e_bench("incast_credit_96k", 3, || {
            let r = incast_fixed();
            assert!(r.verified, "incast failed verification");
            (r.elapsed, 0.0, r.events_executed)
        }),
    ]
}

// ---------------------------------------------------------------------
// Smoke mode: deterministic fingerprints only
// ---------------------------------------------------------------------

fn fingerprint<S: serde::Serialize, B: serde::Serialize>(
    stats: &S,
    breakdown: &B,
    events_executed: u64,
) -> String {
    format!(
        "{{\"events_executed\":{},\"stats\":{},\"breakdown\":{}}}",
        events_executed,
        serde_json::to_string(stats).expect("stats serialize"),
        serde_json::to_string(breakdown).expect("breakdown serialize")
    )
}

fn smoke() {
    let pp = pingpong_fixed(6);
    assert!(pp.verified, "pingpong failed verification");
    let st = stream_fixed(4);
    assert!(st.verified, "stream failed verification");
    let a2a = alltoall_fixed(2);
    assert!(a2a.verified, "alltoall failed verification");
    let fi = fanin_fixed(8);
    assert!(fi.verified, "fan-in failed verification");
    assert!(fi.gro_coalesced > 0, "fan-in smoke must exercise GRO");
    let ic = incast_fixed();
    assert!(ic.verified, "incast failed verification");
    assert!(
        ic.stats.credit_shrinks > 0,
        "incast smoke must engage the credit controller"
    );
    let fp_pp = fingerprint(&pp.stats, &pp.breakdown, pp.events_executed);
    // The two PR-9 engine knobs must be invisible to the schedule:
    // batching at the default calibration (chain cost == submit cost)
    // and a second wheel level both re-run the pingpong and must land
    // on the very same fingerprint bytes. The golden then *contains*
    // the identity claim instead of merely asserting it in a test.
    let ppb = pingpong_cfg(
        6,
        OmxConfig {
            ioat_batch: true,
            ..fixed_cfg()
        },
    );
    assert!(ppb.verified, "batched pingpong failed verification");
    let fp_ppb = fingerprint(&ppb.stats, &ppb.breakdown, ppb.events_executed);
    assert_eq!(
        fp_pp, fp_ppb,
        "ioat_batch must be bit-invisible at the default calibration"
    );
    let ppw = pingpong_cfg(
        6,
        OmxConfig {
            wheel_levels: 2,
            ..fixed_cfg()
        },
    );
    assert!(ppw.verified, "two-level pingpong failed verification");
    let fp_ppw = fingerprint(&ppw.stats, &ppw.breakdown, ppw.events_executed);
    assert_eq!(fp_pp, fp_ppw, "wheel depth must not change the schedule");
    // The scale cell: the partitioned engine's 1024-rank Alltoall at 4
    // partitions must land byte-for-byte on the single-engine run, and
    // its event count is pinned in the golden — a partitioning change
    // that reorders or drops a single event fails the byte-compare.
    let a1k = alltoall_1k(1);
    assert!(a1k.verified, "1k-rank alltoall failed verification");
    let a1k4 = alltoall_1k(4);
    assert!(
        a1k4.verified,
        "partitioned 1k-rank alltoall failed verification"
    );
    let fp_a1k = fingerprint(&a1k.stats, &a1k.breakdown, a1k.events_executed);
    let fp_a1k4 = fingerprint(&a1k4.stats, &a1k4.breakdown, a1k4.events_executed);
    assert_eq!(
        fp_a1k, fp_a1k4,
        "1k-rank alltoall at 4 partitions must be byte-identical to the single engine"
    );
    assert_eq!(a1k.end, a1k4.end, "partitioning moved the completion time");
    assert_eq!(a1k.marks, a1k4.marks, "partitioning moved the rank-0 marks");
    println!(
        "{{\"schema\":\"perf-smoke-v5\",\"seed\":{},\"pingpong\":{},\
         \"pingpong_batched\":{},\"pingpong_two_level\":{},\"stream\":{},\
         \"alltoall\":{},\"fanin_mq\":{},\"incast_credit\":{},\
         \"alltoall_1k_partitioned\":{}}}",
        SEED,
        fp_pp,
        fp_ppb,
        fp_ppw,
        fingerprint(&st.stats, &st.breakdown, st.events_executed),
        fingerprint(&a2a.stats, &a2a.breakdown, a2a.events_executed),
        fingerprint(&fi.stats, &fi.breakdown, fi.events_executed),
        fingerprint(&ic.stats, &ic.breakdown, ic.events_executed),
        fp_a1k4,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut benches = engine_benches(1);
    benches.push(chain_benches(10_000, 9));
    let engine: Vec<String> = benches.iter().map(|b| b.json()).collect();
    let doorbell = doorbell_bench(9).json();
    let e2e: Vec<String> = e2e_benches().iter().map(|b| b.json()).collect();
    println!(
        "{{\"schema\":\"benchrun-v2\",\"engine\":\"{}\",\"profile\":\"{}\",\
         \"engine_benches\":[{}],\"doorbell\":{},\"e2e\":[{}]}}",
        ENGINE,
        profile,
        engine.join(","),
        doorbell,
        e2e.join(","),
    );
}
