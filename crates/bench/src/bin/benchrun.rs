//! Performance trajectory runner (`BENCH_*.json`).
//!
//! Two modes:
//!
//! * default — measure host wall-clock and allocation counts for the
//!   scheduler microbenches and a fixed end-to-end workload per figure
//!   family (ping-pong, stream, all-to-all), and print one JSON report.
//!   These numbers feed `BENCH_pr4.json`; they are *host* measurements
//!   and vary run to run, so they are never byte-compared.
//! * `--smoke` — run the same end-to-end workloads in a cheap fixed
//!   configuration and print only their deterministic simulation
//!   fingerprints (Stats + component breakdown JSON). CI byte-compares
//!   this output against `results/golden/perf_smoke.json`: any
//!   scheduler reordering, stray wall-clock read or unordered
//!   iteration shows up as a diff.
//!
//! Wall-clock numbers are meaningful only from `--release` builds (the
//! debug `SimSanitizer` is compiled out there; see EXPERIMENTS.md).

use omx_hw::CoreId;
use omx_mpi::runner::{run_kernel, KernelResult, Layout};
use omx_mpi::Kernel;
use omx_sim::walltime::Stopwatch;
use omx_sim::{Ps, ReferenceSim, Sim};
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::fault::FaultPlan;
use open_mx::harness::{
    run_fanin, run_incast, run_pingpong, run_stream, FaninConfig, IncastConfig, PingPongConfig,
    Placement, StreamConfig,
};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Counting allocator: every heap allocation (and reallocation) bumps
/// one relaxed counter. Zero-overhead enough to leave on for the whole
/// run; the engine microbenches read deltas around a measured section.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: AllocLayout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: AllocLayout, n: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Relaxed)
}

/// The engine under measurement (recorded in the report so before/after
/// JSON blobs are self-describing).
const ENGINE: &str = "timing-wheel";

const SEED: u64 = 17;

fn fixed_cfg() -> OmxConfig {
    OmxConfig {
        seed: SEED,
        regcache: false,
        ..OmxConfig::with_ioat()
    }
}

// ---------------------------------------------------------------------
// Engine microbenches
// ---------------------------------------------------------------------

struct EngineBench {
    name: &'static str,
    events: u64,
    best_secs: f64,
    median_secs: f64,
    allocs_per_event: f64,
    /// Same shape driven through [`ReferenceSim`] (the original
    /// `BinaryHeap` engine), interleaved repeat-for-repeat with the
    /// wheel so both see the same machine conditions.
    reference_best_secs: f64,
    reference_median_secs: f64,
}

impl EngineBench {
    fn json(&self) -> String {
        let eps = self.events as f64 / self.best_secs;
        let ns_per_event = self.best_secs * 1e9 / self.events as f64;
        let ref_ns = self.reference_best_secs * 1e9 / self.events as f64;
        format!(
            "{{\"name\":\"{}\",\"events\":{},\"best_secs\":{:.6},\"median_secs\":{:.6},\
             \"events_per_sec\":{:.0},\"ns_per_event\":{:.1},\"allocs_per_event\":{:.3},\
             \"reference_best_secs\":{:.6},\"reference_median_secs\":{:.6},\
             \"reference_ns_per_event\":{:.1},\"speedup_vs_reference\":{:.2}}}",
            self.name,
            self.events,
            self.best_secs,
            self.median_secs,
            eps,
            ns_per_event,
            self.allocs_per_event,
            self.reference_best_secs,
            self.reference_median_secs,
            ref_ns,
            self.reference_best_secs / self.best_secs,
        )
    }
}

/// Time one schedule+run shape on both engines, interleaving repeats
/// (wheel, heap, wheel, heap, …) so transient machine load hits both
/// fairly. Reports best and median wall time for each plus the wheel's
/// allocation delta on its final pass.
fn engine_bench(
    name: &'static str,
    repeats: usize,
    wheel_iter: impl Fn() -> u64,
    heap_iter: impl Fn() -> u64,
) -> EngineBench {
    let mut wheel_times = Vec::with_capacity(repeats);
    let mut heap_times = Vec::with_capacity(repeats);
    let mut events = 0;
    let mut allocs = 0.0;
    for rep in 0..repeats {
        let a0 = allocations();
        let sw = Stopwatch::start();
        events = wheel_iter();
        wheel_times.push(sw.elapsed_secs());
        if rep + 1 == repeats {
            allocs = (allocations() - a0) as f64 / events as f64;
        }
        let sw = Stopwatch::start();
        let ref_events = heap_iter();
        heap_times.push(sw.elapsed_secs());
        assert_eq!(events, ref_events, "engines disagree on event count");
    }
    wheel_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    heap_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    EngineBench {
        name,
        events,
        best_secs: wheel_times[0],
        median_secs: wheel_times[wheel_times.len() / 2],
        allocs_per_event: allocs,
        reference_best_secs: heap_times[0],
        reference_median_secs: heap_times[heap_times.len() / 2],
    }
}

/// Expand one bench body for both engine types (they share the
/// scheduling API verbatim, so the shape is written once).
macro_rules! on_both {
    (|$sim:ident| $body:block) => {
        (
            || {
                let mut $sim: Sim<u64> = Sim::new();
                $body
            },
            || {
                let mut $sim: ReferenceSim<u64> = ReferenceSim::new();
                $body
            },
        )
    };
}

fn engine_benches(scale: u64) -> Vec<EngineBench> {
    let n = 10_000 * scale;
    let reps = 9;
    let mut out = Vec::new();
    // Mirror of the Criterion `sim_engine_schedule_run_10k` shape:
    // distinct nanosecond timestamps, trivial closures.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        for i in 0..n {
            sim.schedule_at(Ps::ns(i), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_distinct_ns", reps, w, h));
    // Everything at one instant: pure FIFO-bucket throughput.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        for _ in 0..n {
            sim.schedule_at(Ps::us(3), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_same_instant", reps, w, h));
    // Spread over ~a simulated second in 100 µs strides: every event
    // lands beyond the ~67 µs near-wheel horizon (overflow path).
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        for i in 0..n {
            sim.schedule_at(Ps::us(100 * i), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    out.push(engine_bench("engine_far_future", reps, w, h));
    // Cancel-heavy timer workload: retransmit-style timers where most
    // are revoked before they fire.
    let (w, h) = on_both!(|sim| {
        let mut world = 0u64;
        let mut ids = Vec::with_capacity(n as usize);
        for i in 0..n {
            ids.push(sim.schedule_at_cancellable(Ps::ns(10 + i), |w: &mut u64, _| *w += 1));
        }
        for (i, id) in ids.into_iter().enumerate() {
            if i % 4 != 0 {
                sim.cancel(id);
            }
        }
        sim.run(&mut world);
        world + n // survivors + scheduled: identical across engines
    });
    out.push(engine_bench("engine_cancel_heavy", reps, w, h));
    out
}

/// Self-rescheduling chain: steady-state `schedule_in` from inside
/// handlers, the dominant shape of the protocol simulations. Written
/// outside `on_both!` because the handler names its own engine type.
fn chain_benches(n: u64, reps: usize) -> EngineBench {
    let wheel = move || {
        let mut sim: Sim<u64> = Sim::new();
        let mut world = 0u64;
        fn tick(limit: u64) -> impl Fn(&mut u64, &mut Sim<u64>) {
            move |w, sim| {
                *w += 1;
                if *w < limit {
                    sim.schedule_in(Ps::ns(120), tick(limit));
                }
            }
        }
        sim.schedule_at(Ps::ZERO, tick(n));
        sim.run(&mut world);
        world
    };
    let heap = move || {
        let mut sim: ReferenceSim<u64> = ReferenceSim::new();
        let mut world = 0u64;
        fn tick(limit: u64) -> impl Fn(&mut u64, &mut ReferenceSim<u64>) {
            move |w, sim| {
                *w += 1;
                if *w < limit {
                    sim.schedule_in(Ps::ns(120), tick(limit));
                }
            }
        }
        sim.schedule_at(Ps::ZERO, tick(n));
        sim.run(&mut world);
        world
    };
    engine_bench("engine_reschedule_chain", reps, wheel, heap)
}

// ---------------------------------------------------------------------
// End-to-end workloads (one per figure family)
// ---------------------------------------------------------------------

struct E2eBench {
    name: &'static str,
    wall_best_secs: f64,
    wall_median_secs: f64,
    allocs_total: u64,
    sim_end: Ps,
    throughput_mibs: f64,
}

impl E2eBench {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"wall_best_secs\":{:.4},\"wall_median_secs\":{:.4},\
             \"allocs_total\":{},\"sim_end_ns\":{},\"throughput_mibs\":{:.1}}}",
            self.name,
            self.wall_best_secs,
            self.wall_median_secs,
            self.allocs_total,
            self.sim_end.0 / 1000,
            self.throughput_mibs
        )
    }
}

fn e2e_bench(name: &'static str, repeats: usize, run: impl Fn() -> (Ps, f64)) -> E2eBench {
    let mut times = Vec::with_capacity(repeats);
    let mut sim_end = Ps::ZERO;
    let mut throughput = 0.0;
    let mut allocs_total = 0;
    for rep in 0..repeats {
        let a0 = allocations();
        let sw = Stopwatch::start();
        let (end, thr) = run();
        times.push(sw.elapsed_secs());
        if rep + 1 == repeats {
            sim_end = end;
            throughput = thr;
            allocs_total = allocations() - a0;
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    E2eBench {
        name,
        wall_best_secs: times[0],
        wall_median_secs: times[times.len() / 2],
        allocs_total,
        sim_end,
        throughput_mibs: throughput,
    }
}

fn pingpong_fixed(iters: u32) -> open_mx::harness::PingPongResult {
    let mut c = PingPongConfig::new(
        ClusterParams::with_cfg(fixed_cfg()),
        256 << 10,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    c.iters = iters;
    c.warmup = 1;
    run_pingpong(c)
}

fn stream_fixed(count: u32) -> open_mx::harness::StreamResult {
    let mut c = StreamConfig::new(ClusterParams::with_cfg(fixed_cfg()), 1 << 20);
    c.count = count;
    run_stream(c)
}

/// The multi-queue RX path: 4 RSS queues + GRO trains on the
/// 8-sender medium fan-in.
fn fanin_fixed(count: u32) -> open_mx::harness::FaninResult {
    let mut params = ClusterParams::with_cfg(fixed_cfg());
    params.nic.num_queues = 4;
    params.cfg.gro = true;
    let mut c = FaninConfig::new(params, 16 << 10);
    c.count = count;
    run_fanin(c)
}

/// The credit-governed pull path: an 8-sender large-message incast
/// with the receiver budget on, over the 8-slot pressured ring so the
/// AIMD shrink, the grant FIFO and the shed-load path all execute
/// inside the fingerprint.
fn incast_fixed() -> open_mx::harness::IncastResult {
    let mut params = ClusterParams::with_cfg(OmxConfig {
        fault_plan: FaultPlan::ring_pressure(),
        pull_credits: true,
        ..fixed_cfg()
    });
    params.nic.num_queues = 4;
    run_incast(IncastConfig::new(params, 8, 96 << 10, 2))
}

fn alltoall_fixed(iters: u32) -> KernelResult {
    let params = ClusterParams {
        nodes: 2,
        ..ClusterParams::with_cfg(fixed_cfg())
    };
    run_kernel(Kernel::Alltoall, Layout::TwoPerNode, 1 << 20, iters, params)
}

fn e2e_benches() -> Vec<E2eBench> {
    vec![
        e2e_bench("pingpong_256k", 5, || {
            let r = pingpong_fixed(12);
            assert!(r.verified, "pingpong failed verification");
            (r.end_time, r.throughput_mibs)
        }),
        e2e_bench("stream_1m", 3, || {
            let r = stream_fixed(8);
            assert!(r.verified, "stream failed verification");
            (r.elapsed, r.throughput_mibs)
        }),
        e2e_bench("alltoall_1m", 3, || {
            let r = alltoall_fixed(2);
            assert!(r.verified, "alltoall failed verification");
            (r.end, 0.0)
        }),
        e2e_bench("fanin_mq_16k", 3, || {
            let r = fanin_fixed(16);
            assert!(r.verified, "fan-in failed verification");
            (r.elapsed, r.throughput_mibs)
        }),
        e2e_bench("incast_credit_96k", 3, || {
            let r = incast_fixed();
            assert!(r.verified, "incast failed verification");
            (r.elapsed, 0.0)
        }),
    ]
}

// ---------------------------------------------------------------------
// Smoke mode: deterministic fingerprints only
// ---------------------------------------------------------------------

fn fingerprint<S: serde::Serialize, B: serde::Serialize>(stats: &S, breakdown: &B) -> String {
    format!(
        "{{\"stats\":{},\"breakdown\":{}}}",
        serde_json::to_string(stats).expect("stats serialize"),
        serde_json::to_string(breakdown).expect("breakdown serialize")
    )
}

fn smoke() {
    let pp = pingpong_fixed(6);
    assert!(pp.verified, "pingpong failed verification");
    let st = stream_fixed(4);
    assert!(st.verified, "stream failed verification");
    let a2a = alltoall_fixed(2);
    assert!(a2a.verified, "alltoall failed verification");
    let fi = fanin_fixed(8);
    assert!(fi.verified, "fan-in failed verification");
    assert!(fi.gro_coalesced > 0, "fan-in smoke must exercise GRO");
    let ic = incast_fixed();
    assert!(ic.verified, "incast failed verification");
    assert!(
        ic.stats.credit_shrinks > 0,
        "incast smoke must engage the credit controller"
    );
    println!(
        "{{\"schema\":\"perf-smoke-v3\",\"seed\":{},\"pingpong\":{},\"stream\":{},\
         \"alltoall\":{},\"fanin_mq\":{},\"incast_credit\":{}}}",
        SEED,
        fingerprint(&pp.stats, &pp.breakdown),
        fingerprint(&st.stats, &st.breakdown),
        fingerprint(&a2a.stats, &a2a.breakdown),
        fingerprint(&fi.stats, &fi.breakdown),
        fingerprint(&ic.stats, &ic.breakdown),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut benches = engine_benches(1);
    benches.push(chain_benches(10_000, 9));
    let engine: Vec<String> = benches.iter().map(|b| b.json()).collect();
    let e2e: Vec<String> = e2e_benches().iter().map(|b| b.json()).collect();
    println!(
        "{{\"schema\":\"benchrun-v1\",\"engine\":\"{}\",\"profile\":\"{}\",\
         \"engine_benches\":[{}],\"e2e\":[{}]}}",
        ENGINE,
        profile,
        engine.join(","),
        e2e.join(","),
    );
}
