//! §IV-D NAS note — an IS-like bucket-sort communication kernel.
//!
//! The paper: "We also observed up to 10 % performance increase on the
//! NAS parallel benchmarks, especially on IS which relies on large
//! messages."

use omx_bench::{banner, print_breakdown};
use omx_mpi::nas::is_scripts;
use omx_mpi::runner::{run_scripts, Layout};
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;

fn run(total: u64, ioat: bool, layout: Layout) -> f64 {
    let params = ClusterParams::with_cfg(if ioat {
        OmxConfig::with_ioat()
    } else {
        OmxConfig::default()
    });
    let r = run_scripts(params, layout, is_scripts(layout.np(), total, 4));
    r.end.as_secs_f64()
}

fn main() {
    banner(
        "NAS IS (IV-D)",
        "IS-like bucket-sort kernel: total runtime with and without I/OAT",
    );
    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>10}",
        "keys", "ppn", "memcpy (ms)", "I/OAT (ms)", "speedup"
    );
    for (layout, ppn) in [(Layout::OnePerNode, 1), (Layout::TwoPerNode, 2)] {
        for total in [8u64 << 20, 32 << 20] {
            let base = run(total, false, layout);
            let ioat = run(total, true, layout);
            println!(
                "{:>9}M {:>6} {:>14.2} {:>14.2} {:>9.1}%",
                total >> 20,
                ppn,
                base * 1e3,
                ioat * 1e3,
                (base / ioat - 1.0) * 100.0
            );
        }
    }
    println!();
    println!("Paper shape: up to ~10 % end-to-end gain on IS from I/OAT offload.");
    let layout = Layout::OnePerNode;
    let r = run_scripts(
        ClusterParams::with_cfg(OmxConfig::with_ioat()),
        layout,
        is_scripts(layout.np(), 32 << 20, 4),
    );
    print_breakdown("NAS-IS Open-MX+I/OAT 32M keys", &r.breakdown);
}
