//! Figure 8 — ping-pong improvement from I/OAT asynchronous copy
//! offload in the BH receive path.
//!
//! Fig 3's three curves plus "Open-MX with DMA copy in BH receive".
//! Expected shape (§IV-B1): ≥ ~30-50 % gain beyond 32-64 kB, line-rate
//! saturation (≈1114 of 1186 MiB/s) for multi-megabyte messages, still
//! below the no-copy counterfactual around 256 kB.

use omx_bench::{banner, maybe_json, print_breakdown, print_table, sweep_series};
use omx_hw::CoreId;
use omx_mx::curve::pingpong_throughput_mibs;
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_pingpong, size_sweep, PingPongConfig, Placement};

fn omx_rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let cfg = PingPongConfig::new(
        params,
        size,
        Placement::TwoNodes {
            core_a: CoreId(2),
            core_b: CoreId(2),
        },
    );
    let r = run_pingpong(cfg);
    assert!(r.verified, "payload corruption at {size} B");
    r.throughput_mibs
}

fn main() {
    banner(
        "Figure 8",
        "Ping-pong with I/OAT asynchronous copy offload vs the no-copy prediction",
    );
    let sizes = size_sweep(4 << 20);
    let mx_params = omx_mx::MxParams::default();
    let link = omx_ethernet::LinkParams::default();
    let mx = sweep_series("MX", &sizes, |s| {
        pingpong_throughput_mibs(&mx_params, &link, s)
    });
    let nocopy = sweep_series("Open-MX ignoring BH copy", &sizes, |s| {
        omx_rate(
            s,
            OmxConfig {
                ignore_bh_copy: true,
                ..OmxConfig::default()
            },
        )
    });
    let ioat = sweep_series("Open-MX with DMA copy in BH", &sizes, |s| {
        omx_rate(s, OmxConfig::with_ioat())
    });
    let plain = sweep_series("Open-MX", &sizes, |s| omx_rate(s, OmxConfig::default()));
    let all = vec![mx, nocopy, ioat, plain];
    print_table(&all, "size");

    // Headline numbers the paper quotes.
    let at = |s: &omx_sim::stats::Series, x: u64| s.y_at(x as f64).unwrap_or(f64::NAN);
    let gain_4m = at(&all[2], 4 << 20) / at(&all[3], 4 << 20);
    let gap_256k = 1.0 - at(&all[2], 256 << 10) / at(&all[1], 256 << 10);
    println!();
    println!(
        "4MB: I/OAT {:.0} MiB/s vs plain {:.0} MiB/s  (gain {:.0} %; paper: ~+40-50 %, reaching 1114 of 1186 MiB/s)",
        at(&all[2], 4 << 20),
        at(&all[3], 4 << 20),
        (gain_4m - 1.0) * 100.0
    );
    println!(
        "256kB: I/OAT {:.0} MiB/s is {:.0} % below the no-copy prediction (paper: ~26 %)",
        at(&all[2], 256 << 10),
        gap_256k * 100.0
    );
    for (label, cfg) in [
        ("Open-MX pingpong 4MB", OmxConfig::default()),
        ("Open-MX+I/OAT pingpong 4MB", OmxConfig::with_ioat()),
    ] {
        let r = run_pingpong(PingPongConfig::new(
            ClusterParams::with_cfg(cfg),
            4 << 20,
            Placement::TwoNodes {
                core_a: CoreId(2),
                core_b: CoreId(2),
            },
        ));
        print_breakdown(label, &r.breakdown);
    }
    maybe_json(&all);
}
