//! Figure 12 — all IMB kernels, Open-MX (± I/OAT) normalized to MXoE,
//! at 128 kB and 4 MB, with 1 and 2 processes per node.
//!
//! Paper headlines: ≈68 % of MXoE on average at 128 kB; ≈90 % at 4 MB
//! with 1 ppn (+32 % from I/OAT); ≈94 % at 4 MB with 2 ppn (+41 %,
//! thanks to the I/OAT shared-memory path); ReduceScatter with 2 ppn
//! anomalously slows down with I/OAT.

use omx_bench::{banner, print_breakdown};
use omx_mpi::runner::{run_kernel, Layout};
use omx_mpi::Kernel;
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, StackKind};
use rayon::prelude::*;

fn time_iter(kernel: Kernel, layout: Layout, size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let iters = if size >= 1 << 20 { 5 } else { 8 };
    run_kernel(kernel, layout, size, iters, params)
        .time_per_iter
        .as_secs_f64()
}

fn panel(size: u64, layout: Layout) -> Vec<(Kernel, f64, f64)> {
    Kernel::ALL
        .par_iter()
        .map(|&k| {
            let mx = time_iter(
                k,
                layout,
                size,
                OmxConfig {
                    stack: StackKind::Mxoe,
                    ..OmxConfig::default()
                },
            );
            let omx = time_iter(k, layout, size, OmxConfig::default());
            let ioat = time_iter(k, layout, size, OmxConfig::with_ioat());
            // Percentage of MXoE performance (time ratio inverted).
            (k, 100.0 * mx / omx, 100.0 * mx / ioat)
        })
        .collect()
}

fn print_panel(title: &str, rows: &[(Kernel, f64, f64)]) {
    println!("--- {title} (percentage of MXoE performance) ---");
    println!("{:>12} {:>12} {:>16}", "kernel", "Open-MX", "Open-MX+I/OAT");
    let mut sum_omx = 0.0;
    let mut sum_ioat = 0.0;
    for (k, omx, ioat) in rows {
        println!("{:>12} {:>12.1} {:>16.1}", k.name(), omx, ioat);
        sum_omx += omx;
        sum_ioat += ioat;
    }
    let n = rows.len() as f64;
    println!(
        "{:>12} {:>12.1} {:>16.1}   (improvement {:.0} %)",
        "average",
        sum_omx / n,
        sum_ioat / n,
        (sum_ioat / sum_omx - 1.0) * 100.0
    );
    println!();
}

fn main() {
    banner(
        "Figure 12",
        "IMB kernels normalized to MXoE, 128 kB & 4 MB, 1 & 2 processes per node",
    );
    for (size, label) in [(128u64 << 10, "128kB"), (4 << 20, "4MB")] {
        for (layout, ppn) in [(Layout::OnePerNode, 1), (Layout::TwoPerNode, 2)] {
            let rows = panel(size, layout);
            print_panel(
                &format!("{label} messages, {ppn} process(es) per node"),
                &rows,
            );
        }
    }
    println!("Paper shape: 128kB ≈68 % of MXoE average with I/OAT (+24 %);");
    println!("4MB 1ppn ≈90 % (+32 %); 4MB 2ppn ≈94 % (+41 %, shm I/OAT).");
    let r = run_kernel(
        Kernel::Alltoall,
        Layout::TwoPerNode,
        4 << 20,
        5,
        ClusterParams::with_cfg(OmxConfig::with_ioat()),
    );
    print_breakdown("Alltoall Open-MX+I/OAT 4MB 2ppn", &r.breakdown);
}
