//! Figure 11 — IMB PingPong throughput: MXoE vs Open-MX, with I/OAT
//! and the registration cache toggled.
//!
//! The paper's takeaways: with I/OAT, Open-MX reaches MX's large-
//! message throughput near the 10 GbE line rate; the registration
//! cache matters far less than copy offload (Open-MX registration is
//! cheap — no NIC translation tables).

use omx_bench::{banner, maybe_json, print_breakdown, print_table, sweep_series};
use omx_mpi::runner::{run_kernel, Layout};
use omx_mpi::Kernel;
use open_mx::cluster::ClusterParams;
use open_mx::config::{OmxConfig, StackKind};
use open_mx::harness::size_sweep;

fn rate(size: u64, cfg: OmxConfig) -> f64 {
    let params = ClusterParams::with_cfg(cfg);
    let iters = if size >= 1 << 20 { 6 } else { 12 };
    let r = run_kernel(Kernel::PingPong, Layout::OnePerNode, size, iters, params);
    r.pingpong_mibs(size)
}

fn main() {
    banner(
        "Figure 11",
        "IMB PingPong: MXoE vs Open-MX with I/OAT and regcache toggled (MiB/s)",
    );
    let sizes = size_sweep(16 << 20);
    let mk = |ioat: bool, regcache: bool| OmxConfig {
        regcache,
        ..if ioat {
            OmxConfig::with_ioat()
        } else {
            OmxConfig::default()
        }
    };
    let mx = sweep_series("MX", &sizes, |s| {
        rate(
            s,
            OmxConfig {
                stack: StackKind::Mxoe,
                ..OmxConfig::default()
            },
        )
    });
    let ioat = sweep_series("Open-MX I/OAT", &sizes, |s| rate(s, mk(true, true)));
    let plain = sweep_series("Open-MX", &sizes, |s| rate(s, mk(false, true)));
    let ioat_nrc = sweep_series("Open-MX I/OAT w/o regcache", &sizes, |s| {
        rate(s, mk(true, false))
    });
    let plain_nrc = sweep_series("Open-MX w/o regcache", &sizes, |s| {
        rate(s, mk(false, false))
    });
    let all = vec![mx, ioat, plain, ioat_nrc, plain_nrc];
    print_table(&all, "size");

    let at = |s: &omx_sim::stats::Series, x: u64| s.y_at(x as f64).unwrap_or(f64::NAN);
    println!();
    println!(
        "4MB: MX {:.0} | Open-MX I/OAT {:.0} | Open-MX {:.0} | I/OAT w/o regcache {:.0} | w/o regcache {:.0} MiB/s",
        at(&all[0], 4 << 20),
        at(&all[1], 4 << 20),
        at(&all[2], 4 << 20),
        at(&all[3], 4 << 20),
        at(&all[4], 4 << 20),
    );
    println!("Paper shape: Open-MX+I/OAT matches MX near line rate for large messages;");
    println!("dropping the regcache costs far less than dropping I/OAT.");
    let r = run_kernel(
        Kernel::PingPong,
        Layout::OnePerNode,
        4 << 20,
        6,
        ClusterParams::with_cfg(mk(true, true)),
    );
    print_breakdown("IMB PingPong Open-MX+I/OAT 4MB", &r.breakdown);
    maybe_json(&all);
}
