//! Figure 10 — Open-MX one-copy shared-memory ping-pong with I/OAT
//! offload of synchronous copies.
//!
//! Three curves: memcpy with both processes on the same dual-core
//! subchip (shared L2), memcpy across sockets, and the I/OAT
//! synchronous copy. Expected shape: the shared-cache memcpy flies at
//! ≈6 GiB/s while the working set fits the L2, then collapses to the
//! cross-socket ≈1.2 GiB/s; the offloaded copy holds ≈2.3 GiB/s for
//! large messages (≈+80 % over uncached memcpy).

use omx_bench::{banner, maybe_json, print_breakdown, print_table, sweep_series};
use omx_hw::CoreId;
use open_mx::cluster::ClusterParams;
use open_mx::config::OmxConfig;
use open_mx::harness::{run_pingpong, size_sweep, PingPongConfig, Placement};

fn shm_rate(size: u64, core_b: CoreId, ioat: bool) -> f64 {
    let params = ClusterParams::with_cfg(if ioat {
        OmxConfig {
            // Offload every large local message so the curve shows the
            // raw synchronous-copy capability, as in the figure.
            ioat_shm_threshold: 32 << 10,
            ..OmxConfig::with_ioat()
        }
    } else {
        OmxConfig::default()
    });
    let cfg = PingPongConfig::new(
        params,
        size,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b,
        },
    );
    let r = run_pingpong(cfg);
    assert!(r.verified, "payload corruption at {size} B");
    r.throughput_mibs
}

fn main() {
    banner(
        "Figure 10",
        "One-copy shared-memory ping-pong: memcpy placements vs I/OAT sync copy (MiB/s)",
    );
    let sizes = size_sweep(16 << 20);
    // Core 1 shares the L2 with core 0; core 4 is on the other socket.
    let same = sweep_series("Memcpy same dual-core subchip", &sizes, |s| {
        shm_rate(s, CoreId(1), false)
    });
    let cross = sweep_series("Memcpy between sockets", &sizes, |s| {
        shm_rate(s, CoreId(4), false)
    });
    let ioat = sweep_series("I/OAT offloaded sync copy", &sizes, |s| {
        shm_rate(s, CoreId(4), true)
    });
    let all = vec![same, cross, ioat];
    print_table(&all, "size");
    println!();
    println!("Paper shape: shared-L2 memcpy ≈6 GiB/s below ~1-2 MB then collapses;");
    println!("cross-socket memcpy ≈1.2 GiB/s; I/OAT ≈2.3 GiB/s beyond 32 kB (+80 %).");
    let r = run_pingpong(PingPongConfig::new(
        ClusterParams::with_cfg(OmxConfig {
            ioat_shm_threshold: 32 << 10,
            ..OmxConfig::with_ioat()
        }),
        4 << 20,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b: CoreId(4),
        },
    ));
    print_breakdown("shm I/OAT pingpong 4MB", &r.breakdown);
    maybe_json(&all);
}
