//! Criterion benches of the simulator's hot paths: the DES engine,
//! the wire protocol codec, the matcher, the hardware cost models and
//! a full end-to-end ping-pong simulation per figure family.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use omx_hw::mem::{CopyContext, MemModel};
use omx_hw::{Distance, HwParams, IoatEngine};
use omx_sim::{Ps, ReferenceSim, Sim};
use open_mx::cluster::ClusterParams;
use open_mx::harness::copybench::{copy_time, CopyEngine};
use open_mx::harness::{run_pingpong, PingPongConfig, Placement};
use open_mx::matching::{Matcher, PostedRecv};
use open_mx::proto::Packet;
use open_mx::ReqId;

/// One bench body over both engine types (identical APIs, no shared
/// trait): `<name>` runs the timing wheel, `<name>_reference` the
/// retired `BinaryHeap` scheduler it must beat.
macro_rules! engine_bench {
    ($c:expr, $name:literal, |$sim:ident| $body:block) => {
        $c.bench_function($name, |b| {
            b.iter(|| {
                let mut $sim: Sim<u64> = Sim::new();
                black_box($body)
            })
        });
        $c.bench_function(concat!($name, "_reference"), |b| {
            b.iter(|| {
                let mut $sim: ReferenceSim<u64> = ReferenceSim::new();
                black_box($body)
            })
        });
    };
}

fn bench_engine(c: &mut Criterion) {
    engine_bench!(c, "sim_engine_schedule_run_10k", |sim| {
        let mut world = 0u64;
        for i in 0..10_000u64 {
            sim.schedule_at(Ps::ns(i), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    // 10k events at one instant: the whole burst lands in a single
    // wheel slot and must drain FIFO.
    engine_bench!(c, "sim_engine_same_instant_burst_10k", |sim| {
        let mut world = 0u64;
        let at = Ps::us(3);
        for _ in 0..10_000u64 {
            sim.schedule_at(at, |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    // Events 100 µs apart — every one beyond the ~67 µs wheel window,
    // exercising the overflow heap and the cascade.
    engine_bench!(c, "sim_engine_far_future_overflow_10k", |sim| {
        let mut world = 0u64;
        for i in 0..10_000u64 {
            sim.schedule_at(Ps::us(100 * i), |w: &mut u64, _| *w += 1);
        }
        sim.run(&mut world);
        world
    });
    // Cancel-heavy: 3 of every 4 timers are revoked before firing
    // (retransmit timers in a healthy run).
    engine_bench!(c, "sim_engine_cancel_heavy_10k", |sim| {
        let mut world = 0u64;
        let ids: Vec<_> = (0..10_000u64)
            .map(|i| sim.schedule_at_cancellable(Ps::ns(10 + i), |w: &mut u64, _| *w += 1))
            .collect();
        for (i, id) in ids.into_iter().enumerate() {
            if i % 4 != 0 {
                sim.cancel(id);
            }
        }
        sim.run(&mut world);
        world
    });
}

fn bench_protocol(c: &mut Criterion) {
    let pkt = Packet::LargeFrag {
        src_ep: 1,
        dst_ep: 2,
        recv_handle: 88,
        frag_idx: 17,
        offset: 17 * 4096,
        data: Bytes::from(vec![0x5Au8; 4096]),
    };
    c.bench_function("proto_pack_4k_frag", |b| b.iter(|| black_box(pkt.pack())));
    let packed = pkt.pack();
    c.bench_function("proto_parse_4k_frag", |b| {
        b.iter(|| black_box(Packet::parse(&packed).expect("parses")))
    });
}

fn bench_matcher(c: &mut Criterion) {
    c.bench_function("matcher_post_and_match_64", |b| {
        b.iter(|| {
            let mut m = Matcher::new();
            for i in 0..64u64 {
                m.post_recv(PostedRecv {
                    req: ReqId(i),
                    match_info: i,
                    mask: u64::MAX,
                    len: 4096,
                });
            }
            for i in 0..64u64 {
                black_box(m.match_incoming(i));
            }
        })
    });
}

fn bench_models(c: &mut Criterion) {
    let hw = HwParams::default();
    c.bench_function("memcpy_model_1mb", |b| {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        b.iter(|| black_box(MemModel::copy_time(&hw, 1 << 20, 256, &ctx)))
    });
    c.bench_function("ioat_model_1mb", |b| {
        b.iter(|| black_box(copy_time(&hw, CopyEngine::Ioat, 1 << 20, 4096)))
    });
    c.bench_function("ioat_submit_256_descriptors", |b| {
        b.iter(|| {
            let mut e = IoatEngine::new(&hw);
            for _ in 0..256 {
                black_box(e.submit(&hw, Ps::ZERO, 0, 4096, 1));
            }
        })
    });
}

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_pingpong_simulation");
    g.sample_size(10);
    for size in [4096u64, 256 << 10] {
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| {
                let mut cfg = PingPongConfig::new(
                    ClusterParams::default(),
                    size,
                    Placement::TwoNodes {
                        core_a: omx_hw::CoreId(2),
                        core_b: omx_hw::CoreId(2),
                    },
                );
                cfg.iters = 3;
                cfg.warmup = 1;
                black_box(run_pingpong(cfg).throughput_mibs)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_protocol,
    bench_matcher,
    bench_models,
    bench_e2e
);
criterion_main!(benches);
