//! Rank scripts and the rank state machine.

use omx_sim::Ps;
use serde::{Deserialize, Serialize};

/// One point-to-point send within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendOp {
    /// Destination rank.
    pub to: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// MPI tag.
    pub tag: u32,
}

/// One point-to-point receive within a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecvOp {
    /// Source rank.
    pub from: usize,
    /// Expected bytes.
    pub bytes: u64,
    /// MPI tag.
    pub tag: u32,
}

/// One phase of a rank's script: post everything, wait for everything
/// (`MPI_Waitall`), then run local compute.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Phase {
    /// Non-blocking sends posted at phase entry.
    pub sends: Vec<SendOp>,
    /// Non-blocking receives posted at phase entry.
    pub recvs: Vec<RecvOp>,
    /// Local compute after the waits (e.g. reduction arithmetic).
    pub compute: Ps,
    /// Record a timestamp when this phase completes (per-iteration
    /// timing markers).
    pub mark: bool,
}

impl Phase {
    /// A phase with a single send.
    pub fn send(to: usize, bytes: u64, tag: u32) -> Phase {
        Phase {
            sends: vec![SendOp { to, bytes, tag }],
            ..Phase::default()
        }
    }

    /// A phase with a single receive.
    pub fn recv(from: usize, bytes: u64, tag: u32) -> Phase {
        Phase {
            recvs: vec![RecvOp { from, bytes, tag }],
            ..Phase::default()
        }
    }

    /// A combined send+receive phase (`MPI_Sendrecv`).
    pub fn sendrecv(
        to: usize,
        sbytes: u64,
        stag: u32,
        from: usize,
        rbytes: u64,
        rtag: u32,
    ) -> Phase {
        Phase {
            sends: vec![SendOp {
                to,
                bytes: sbytes,
                tag: stag,
            }],
            recvs: vec![RecvOp {
                from,
                bytes: rbytes,
                tag: rtag,
            }],
            ..Phase::default()
        }
    }

    /// Pure local compute.
    pub fn compute(dur: Ps) -> Phase {
        Phase {
            compute: dur,
            ..Phase::default()
        }
    }

    /// Attach reduction compute to this phase.
    pub fn with_compute(mut self, dur: Ps) -> Phase {
        self.compute = dur;
        self
    }

    /// Mark iteration completion when this phase finishes.
    pub fn marked(mut self) -> Phase {
        self.mark = true;
        self
    }

    /// Total bytes sent by this phase.
    pub fn bytes_sent(&self) -> u64 {
        self.sends.iter().map(|s| s.bytes).sum()
    }
}

/// A rank's full script.
pub type Script = Vec<Phase>;

/// Encode (source rank, tag) into MX match information. Ranks and tags
/// both fit comfortably; the mask matches exactly.
pub fn match_info(from_rank: usize, tag: u32) -> u64 {
    ((from_rank as u64) << 32) | tag as u64
}

/// Cost of reducing `bytes` of doubles on one 2008-era core
/// (out-of-cache streaming add, ≈2 GB/s).
pub fn reduce_cost(bytes: u64) -> Ps {
    Ps::ps(bytes * 500)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_builders() {
        let p = Phase::send(1, 1024, 7);
        assert_eq!(p.sends.len(), 1);
        assert!(p.recvs.is_empty());
        assert_eq!(p.bytes_sent(), 1024);
        let p = Phase::sendrecv(1, 10, 1, 2, 20, 2);
        assert_eq!(p.sends[0].to, 1);
        assert_eq!(p.recvs[0].from, 2);
        let p = Phase::recv(0, 64, 3).marked();
        assert!(p.mark);
        let p = Phase::compute(Ps::us(5));
        assert_eq!(p.compute, Ps::us(5));
        assert_eq!(p.bytes_sent(), 0);
    }

    #[test]
    fn match_info_disambiguates() {
        assert_ne!(match_info(0, 5), match_info(1, 5));
        assert_ne!(match_info(2, 5), match_info(2, 6));
        assert_eq!(match_info(3, 9) >> 32, 3);
        assert_eq!(match_info(3, 9) & 0xFFFF_FFFF, 9);
    }

    #[test]
    fn reduce_cost_scales() {
        assert_eq!(reduce_cost(0), Ps::ZERO);
        assert_eq!(reduce_cost(2_000), Ps::us(1));
    }
}
