//! Per-rank script builders for the Intel MPI Benchmarks kernels the
//! paper runs in Figure 12 (plus PingPong for Figure 11).
//!
//! All algorithms are the classic power-of-two implementations (the
//! same families MPICH used at the time): binomial broadcast/reduce,
//! recursive doubling allreduce/allgather, recursive halving
//! reduce-scatter, pairwise alltoall, ring allgatherv. `np` must be a
//! power of two (2 or 4 in the paper's runs).

use crate::ops::{reduce_cost, Phase, RecvOp, Script, SendOp};
use serde::{Deserialize, Serialize};

/// The IMB kernels of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Two-rank round trip.
    PingPong,
    /// Two ranks sending to each other simultaneously.
    PingPing,
    /// Ring send-receive.
    SendRecv,
    /// Bidirectional neighbor exchange.
    Exchange,
    /// Recursive-doubling allreduce.
    Allreduce,
    /// Binomial reduction to root 0.
    Reduce,
    /// Recursive-halving reduce-scatter.
    ReduceScatter,
    /// Recursive-doubling allgather.
    Allgather,
    /// Ring allgatherv.
    Allgatherv,
    /// Pairwise alltoall.
    Alltoall,
    /// Binomial broadcast from root 0.
    Bcast,
}

impl Kernel {
    /// Every kernel, in the paper's Figure 12 order.
    pub const ALL: [Kernel; 11] = [
        Kernel::PingPong,
        Kernel::PingPing,
        Kernel::SendRecv,
        Kernel::Exchange,
        Kernel::Allreduce,
        Kernel::Reduce,
        Kernel::ReduceScatter,
        Kernel::Allgather,
        Kernel::Allgatherv,
        Kernel::Alltoall,
        Kernel::Bcast,
    ];

    /// Display name matching the paper's x-axis labels.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::PingPong => "PingPong",
            Kernel::PingPing => "PingPing",
            Kernel::SendRecv => "SendRecv",
            Kernel::Exchange => "Exchange",
            Kernel::Allreduce => "Allreduce",
            Kernel::Reduce => "Reduce",
            Kernel::ReduceScatter => "Red.Scat.",
            Kernel::Allgather => "Allgather",
            Kernel::Allgatherv => "Allgatherv",
            Kernel::Alltoall => "Alltoall",
            Kernel::Bcast => "Bcast",
        }
    }

    /// Minimum rank count this kernel is defined for.
    pub fn min_np(&self) -> usize {
        2
    }

    /// Build the per-rank scripts for `np` ranks, message size `size`,
    /// `iters` iterations. Rank 0 marks the end of every iteration.
    pub fn scripts(&self, np: usize, size: u64, iters: u32) -> Vec<Script> {
        (0..np)
            .map(|rank| self.rank_script(rank, np, size, iters))
            .collect()
    }

    /// Build the script of **one** rank without materializing the
    /// whole job — the partitioned runner calls this so each shard
    /// only pays for its own ranks' scripts (a 4k-rank alltoall has
    /// ~16M phases per iteration across the job; per-rank generation
    /// keeps a shard's share of that, not all of it).
    pub fn rank_script(&self, rank: usize, np: usize, size: u64, iters: u32) -> Script {
        assert!(np.is_power_of_two() && np >= 2, "np must be a power of two");
        assert!(rank < np, "rank {rank} out of range for np {np}");
        let mut script = Vec::new();
        for _ in 0..iters {
            let mut phases: Vec<Phase> = match self {
                Kernel::PingPong => pingpong(rank, np, size),
                Kernel::PingPing => pingping(rank, np, size),
                Kernel::SendRecv => sendrecv_ring(rank, np, size),
                Kernel::Exchange => exchange(rank, np, size),
                Kernel::Allreduce => allreduce(rank, np, size),
                Kernel::Reduce => reduce(rank, np, size),
                Kernel::ReduceScatter => reduce_scatter(rank, np, size),
                Kernel::Allgather => allgather(rank, np, size),
                Kernel::Allgatherv => allgatherv(rank, np, size),
                Kernel::Alltoall => alltoall(rank, np, size),
                Kernel::Bcast => bcast(rank, np, size),
            };
            if rank == 0 {
                if let Some(last) = phases.last_mut() {
                    last.mark = true;
                }
            }
            script.extend(phases);
        }
        script
    }
}

fn log2(np: usize) -> usize {
    np.trailing_zeros() as usize
}

fn pingpong(r: usize, np: usize, size: u64) -> Vec<Phase> {
    assert!(np >= 2);
    match r {
        0 => vec![Phase::send(1, size, 0), Phase::recv(1, size, 1)],
        1 => vec![Phase::recv(0, size, 0), Phase::send(0, size, 1)],
        _ => Vec::new(), // extra ranks idle
    }
}

fn pingping(r: usize, np: usize, size: u64) -> Vec<Phase> {
    assert!(np >= 2);
    match r {
        0 => vec![Phase::sendrecv(1, size, 0, 1, size, 0)],
        1 => vec![Phase::sendrecv(0, size, 0, 0, size, 0)],
        _ => Vec::new(),
    }
}

fn sendrecv_ring(r: usize, np: usize, size: u64) -> Vec<Phase> {
    let right = (r + 1) % np;
    let left = (r + np - 1) % np;
    vec![Phase::sendrecv(right, size, 0, left, size, 0)]
}

fn exchange(r: usize, np: usize, size: u64) -> Vec<Phase> {
    let right = (r + 1) % np;
    let left = (r + np - 1) % np;
    vec![Phase {
        sends: vec![
            SendOp {
                to: right,
                bytes: size,
                tag: 0,
            },
            SendOp {
                to: left,
                bytes: size,
                tag: 1,
            },
        ],
        recvs: vec![
            RecvOp {
                from: left,
                bytes: size,
                tag: 0,
            },
            RecvOp {
                from: right,
                bytes: size,
                tag: 1,
            },
        ],
        ..Phase::default()
    }]
}

fn allreduce(r: usize, np: usize, size: u64) -> Vec<Phase> {
    (0..log2(np))
        .map(|s| {
            let partner = r ^ (1 << s);
            Phase::sendrecv(partner, size, s as u32, partner, size, s as u32)
                .with_compute(reduce_cost(size))
        })
        .collect()
}

fn reduce(r: usize, np: usize, size: u64) -> Vec<Phase> {
    let mut phases = Vec::new();
    for s in 0..log2(np) {
        let bit = 1usize << s;
        let group = bit << 1;
        if r % group == bit {
            phases.push(Phase::send(r - bit, size, s as u32));
            break; // this rank is done for the iteration
        } else if r.is_multiple_of(group) && r + bit < np {
            phases.push(Phase::recv(r + bit, size, s as u32).with_compute(reduce_cost(size)));
        }
    }
    phases
}

fn reduce_scatter(r: usize, np: usize, size: u64) -> Vec<Phase> {
    let mut phases = Vec::new();
    let mut dist = np / 2;
    let mut sz = size / 2;
    let mut step = 0u32;
    while dist >= 1 && sz > 0 {
        let partner = r ^ dist;
        phases.push(
            Phase::sendrecv(partner, sz, step, partner, sz, step).with_compute(reduce_cost(sz)),
        );
        dist /= 2;
        sz /= 2;
        step += 1;
    }
    phases
}

fn allgather(r: usize, np: usize, size: u64) -> Vec<Phase> {
    // Recursive doubling: exchanged block doubles each step, starting
    // from each rank's own `size`-byte contribution (IMB convention).
    (0..log2(np))
        .map(|s| {
            let partner = r ^ (1 << s);
            let block = size << s;
            Phase::sendrecv(partner, block, s as u32, partner, block, s as u32)
        })
        .collect()
}

fn allgatherv(r: usize, np: usize, size: u64) -> Vec<Phase> {
    // Ring: np-1 steps forwarding `size`-byte blocks.
    let right = (r + 1) % np;
    let left = (r + np - 1) % np;
    (0..np - 1)
        .map(|s| Phase::sendrecv(right, size, s as u32, left, size, s as u32))
        .collect()
}

fn alltoall(r: usize, np: usize, size: u64) -> Vec<Phase> {
    // Pairwise exchange: step i pairs rank with rank ^ i.
    (1..np)
        .map(|i| {
            let partner = r ^ i;
            Phase::sendrecv(partner, size, i as u32, partner, size, i as u32)
        })
        .collect()
}

fn bcast(r: usize, np: usize, size: u64) -> Vec<Phase> {
    let mut phases = Vec::new();
    for s in 0..log2(np) {
        let bit = 1usize << s;
        if r < bit {
            if r + bit < np {
                phases.push(Phase::send(r + bit, size, s as u32));
            }
        } else if r < bit << 1 {
            phases.push(Phase::recv(r - bit, size, s as u32));
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every send must have exactly one matching receive (same pair,
    /// same tag, same bytes) — otherwise the job deadlocks.
    fn check_balanced(kernel: Kernel, np: usize, size: u64) {
        let scripts = kernel.scripts(np, size, 3);
        let mut sends: Vec<(usize, usize, u32, u64)> = Vec::new();
        let mut recvs: Vec<(usize, usize, u32, u64)> = Vec::new();
        for (rank, script) in scripts.iter().enumerate() {
            for ph in script {
                for s in &ph.sends {
                    sends.push((rank, s.to, s.tag, s.bytes));
                }
                for r in &ph.recvs {
                    recvs.push((r.from, rank, r.tag, r.bytes));
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(
            sends,
            recvs,
            "{} np={np}: sends and receives must pair up",
            kernel.name()
        );
        assert!(
            !sends.is_empty(),
            "{} np={np}: kernel moved no data",
            kernel.name()
        );
    }

    #[test]
    fn all_kernels_balanced_np2_and_np4() {
        for k in Kernel::ALL {
            for np in [2usize, 4] {
                check_balanced(k, np, 128 << 10);
            }
        }
    }

    #[test]
    fn rank0_marks_every_iteration() {
        for k in Kernel::ALL {
            let scripts = k.scripts(4, 4096, 5);
            let marks = scripts[0].iter().filter(|p| p.mark).count();
            assert_eq!(marks, 5, "{}: one mark per iteration", k.name());
        }
    }

    #[test]
    fn bcast_reaches_everyone() {
        let scripts = Kernel::Bcast.scripts(4, 1024, 1);
        // Ranks 1..3 each receive exactly once.
        for (r, script) in scripts.iter().enumerate().skip(1) {
            let recvs: usize = script.iter().map(|p| p.recvs.len()).sum();
            assert_eq!(recvs, 1, "rank {r}");
        }
        // Root never receives.
        assert_eq!(scripts[0].iter().map(|p| p.recvs.len()).sum::<usize>(), 0);
    }

    #[test]
    fn reduce_scatter_halves_sizes() {
        let scripts = Kernel::ReduceScatter.scripts(4, 1 << 20, 1);
        let sizes: Vec<u64> = scripts[0]
            .iter()
            .flat_map(|p| p.sends.iter().map(|s| s.bytes))
            .collect();
        assert_eq!(sizes, vec![512 << 10, 256 << 10]);
    }

    #[test]
    fn alltoall_pairs_everyone() {
        let scripts = Kernel::Alltoall.scripts(4, 4096, 1);
        let partners: Vec<usize> = scripts[2]
            .iter()
            .flat_map(|p| p.sends.iter().map(|s| s.to))
            .collect();
        let mut sorted = partners.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_np_rejected() {
        Kernel::Allreduce.scripts(3, 1024, 1);
    }
}
