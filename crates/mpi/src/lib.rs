//! A rank-script MPI layer over the MX API, plus the Intel MPI
//! Benchmarks (IMB) kernels the paper evaluates in Figures 11 and 12
//! and a NAS-IS-like workload (§IV-D).
//!
//! MPI semantics are modeled as *phased scripts*: each rank executes a
//! sequence of phases; a phase posts any number of non-blocking sends
//! and receives and waits for all of them (MPI `Waitall`), optionally
//! followed by local compute (reduction arithmetic). That is exactly
//! the structure of every IMB kernel, and it runs unchanged on both
//! stacks — Open-MX (± I/OAT, ± regcache) and native MXoE — which is
//! what the normalized Figure 12 comparison needs.
//!
//! * [`ops`] — phase/script types and the rank state machine,
//! * [`kernels`] — per-rank script builders for the 11 IMB kernels,
//! * [`runner`] — job assembly, placement (1 or 2 processes per node)
//!   and timing,
//! * [`nas`] — the IS-like bucket-sort communication kernel.

pub mod kernels;
pub mod nas;
pub mod ops;
pub mod runner;

pub use kernels::Kernel;
pub use ops::{Phase, Script};
pub use runner::{run_kernel, KernelResult, Layout};
