//! A NAS-IS-like communication kernel (§IV-D: "up to 10 % performance
//! increase on the NAS parallel benchmarks, especially on IS which
//! relies on large messages").
//!
//! IS (integer sort) per iteration: rank local key counting, a small
//! allreduce of bucket counts, a small alltoall of bucket sizes, then
//! the heavy alltoallv moving the keys themselves — the large messages
//! the paper credits for the I/OAT gain.

use crate::ops::{reduce_cost, Phase, Script};
use omx_sim::Ps;

/// Build per-rank scripts for an IS-like run.
///
/// * `np` — ranks (power of two),
/// * `total_keys_bytes` — total key volume per iteration (split evenly
///   across all rank pairs in the alltoallv),
/// * `iters` — iterations.
pub fn is_scripts(np: usize, total_keys_bytes: u64, iters: u32) -> Vec<Script> {
    assert!(np.is_power_of_two() && np >= 2);
    let bucket_bytes = 1 << 10; // bucket-count vectors
    let size_exchange = 256; // per-pair size announcements
    let keys_per_pair = total_keys_bytes / (np as u64 * np as u64);
    let mut scripts: Vec<Script> = vec![Vec::new(); np];
    for _ in 0..iters {
        for (rank, script) in scripts.iter_mut().enumerate() {
            // Local key work: counting pass + bucket scatter pass +
            // final ranking pass over this rank's share of the keys
            // (IS is compute-heavy; communication is roughly a fifth
            // of the iteration).
            let local = total_keys_bytes / np as u64;
            script.push(Phase::compute(Ps::ps(local * 2500)));
            // Allreduce of bucket counts (recursive doubling).
            for s in 0..np.trailing_zeros() {
                let partner = rank ^ (1usize << s);
                script.push(
                    Phase::sendrecv(
                        partner,
                        bucket_bytes,
                        100 + s,
                        partner,
                        bucket_bytes,
                        100 + s,
                    )
                    .with_compute(reduce_cost(bucket_bytes)),
                );
            }
            // Alltoall of bucket sizes (tiny).
            for i in 1..np {
                let partner = rank ^ i;
                script.push(Phase::sendrecv(
                    partner,
                    size_exchange,
                    200 + i as u32,
                    partner,
                    size_exchange,
                    200 + i as u32,
                ));
            }
            // Alltoallv of the keys (large messages — the I/OAT case).
            for i in 1..np {
                let partner = rank ^ i;
                let mut ph = Phase::sendrecv(
                    partner,
                    keys_per_pair,
                    300 + i as u32,
                    partner,
                    keys_per_pair,
                    300 + i as u32,
                );
                if i == np - 1 && rank == 0 {
                    ph.mark = true;
                }
                script.push(ph);
            }
            if rank == 0 && np == 2 {
                // With np=2 the single alltoallv phase already marked.
            }
        }
    }
    scripts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_scripts, Layout};
    use open_mx::cluster::ClusterParams;
    use open_mx::config::OmxConfig;

    #[test]
    fn scripts_balanced() {
        let scripts = is_scripts(4, 8 << 20, 2);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, s) in scripts.iter().enumerate() {
            for ph in s {
                for x in &ph.sends {
                    sends.push((rank, x.to, x.tag, x.bytes));
                }
                for x in &ph.recvs {
                    recvs.push((x.from, rank, x.tag, x.bytes));
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    }

    #[test]
    fn ioat_gains_on_is() {
        let base = run_scripts(
            ClusterParams::default(),
            Layout::OnePerNode,
            is_scripts(2, 8 << 20, 3),
        );
        let p = ClusterParams::with_cfg(OmxConfig::with_ioat());
        let ioat = run_scripts(p, Layout::OnePerNode, is_scripts(2, 8 << 20, 3));
        assert!(
            ioat.end < base.end,
            "I/OAT {} vs memcpy {}",
            ioat.end,
            base.end
        );
    }
}
