//! Job assembly and execution: place ranks on nodes/cores, run the
//! scripts on a cluster, extract per-iteration timing.

use crate::kernels::Kernel;
use crate::ops::{match_info, Phase, Script};
use omx_hw::CoreId;
use omx_sim::{Ps, Sim};
use open_mx::app::{App, AppCtx, Completion};
use open_mx::cluster::{Cluster, ClusterParams};
use open_mx::{EpAddr, EpIdx, NodeId, ReqId};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Rank placement across the two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One process per node: ranks 0,1 on nodes 0,1 (np = 2).
    OnePerNode,
    /// Two processes per node, round-robin placement (the common
    /// mpirun default of the era): ranks 0,2 on node 0, ranks 1,3 on
    /// node 1 (np = 4). Ranks 0 and 1 stay remote — IMB PingPong with
    /// 2 ppn still measures the network — while even/odd pairs on one
    /// host exercise the shared-memory path. The two local ranks sit
    /// on different sockets (no shared L2).
    TwoPerNode,
    /// `n` nodes, one rank per node (rank `r` on node `r`, core 2) —
    /// the scale layout for 1k–10k-rank jobs, partitionable across
    /// engine shards because no two ranks share a node.
    Nodes(usize),
}

impl Layout {
    /// Number of ranks.
    pub fn np(&self) -> usize {
        match self {
            Layout::OnePerNode => 2,
            Layout::TwoPerNode => 4,
            Layout::Nodes(n) => *n,
        }
    }

    /// Number of hosts the layout occupies.
    pub fn nodes(&self) -> usize {
        match self {
            Layout::OnePerNode | Layout::TwoPerNode => 2,
            Layout::Nodes(n) => *n,
        }
    }

    /// Node and core of one rank.
    pub fn spec(&self, rank: usize) -> (NodeId, CoreId) {
        match self {
            Layout::OnePerNode => (NodeId(rank as u32), CoreId(2)),
            Layout::TwoPerNode => {
                let node = NodeId((rank % 2) as u32);
                let core = if rank / 2 == 0 { CoreId(2) } else { CoreId(4) };
                (node, core)
            }
            Layout::Nodes(_) => (NodeId(rank as u32), CoreId(2)),
        }
    }

    /// Endpoint address of one rank (add order is rank order).
    pub fn addr(&self, rank: usize) -> EpAddr {
        let (node, _) = self.spec(rank);
        let ep = match self {
            Layout::OnePerNode | Layout::Nodes(_) => 0,
            Layout::TwoPerNode => (rank / 2) as u8,
        };
        EpAddr {
            node,
            ep: EpIdx(ep),
        }
    }
}

/// Result of one kernel run.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Steady-state time per iteration (rank 0 mark spacing, warm-up
    /// marks skipped).
    pub time_per_iter: Ps,
    /// Simulation end time.
    pub end: Ps,
    /// Rank-0 mark timestamps.
    pub marks: Vec<Ps>,
    /// Per-component time accounting over the whole job.
    pub breakdown: open_mx::harness::ComponentBreakdown,
    /// Whether no send was aborted by retransmission exhaustion and —
    /// unless the configuration deliberately injects faults — the wire
    /// stayed clean (no ring or FCS drops).
    pub verified: bool,
    /// Engine events executed over the whole job (deterministic; feeds
    /// benchrun's events/sec figure and the perf-smoke fingerprint).
    pub events_executed: u64,
    /// Aggregate cluster counters at the end of the job, fault and
    /// recovery events included.
    pub stats: open_mx::cluster::Stats,
    /// Skbuffs still held by pending copies after the job drained
    /// (leak detector: must be zero).
    pub end_skbuffs_held: u64,
    /// Pinned regions still registered at the end, summed over every
    /// endpoint (with the registration cache disabled this must be
    /// zero).
    pub end_pinned_regions: u64,
    /// Per-shard deterministic load figures, in shard order (one entry
    /// for an unpartitioned run). The scale ablation renders these as
    /// its events / peak-memory-proxy columns.
    pub shards: Vec<ShardLoad>,
}

/// One shard's deterministic load and footprint figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Engine events this shard executed.
    pub events: u64,
    /// Peak simultaneous pending events on this shard's wheel — the
    /// engine's peak-memory proxy (event pool + slab occupancy track
    /// the pending population), deterministic per schedule.
    pub peak_pending: usize,
    /// Ranks whose scripts lived on this shard.
    pub ranks: usize,
}

impl KernelResult {
    /// IMB-style throughput for a ping-pong-like kernel: bytes per
    /// half-iteration, in MiB/s.
    pub fn pingpong_mibs(&self, size: u64) -> f64 {
        size as f64 / (self.time_per_iter / 2).as_secs_f64() / (1u64 << 20) as f64
    }
}

#[derive(Default)]
struct JobShared {
    marks: Vec<Ps>,
    done_ranks: usize,
    /// Ranks installed on this shard (owned nodes only).
    ranks_installed: usize,
}

struct RankApp {
    rank: usize,
    script: Script,
    pc: usize,
    /// Rank → endpoint table, shared by every rank on this shard (at
    /// 10k ranks a per-app copy would be ~800 MB across the job).
    addrs: Rc<Vec<EpAddr>>,
    waiting: BTreeSet<ReqId>,
    shared: Rc<RefCell<JobShared>>,
    done: bool,
    finished_count: bool,
}

impl RankApp {
    /// Stable buffer identity per (peer, tag, direction) so repeated
    /// iterations reuse registrations (the Fig 11 regcache effect).
    fn buf_tag(&self, peer: usize, tag: u32, send: bool) -> u64 {
        ((self.rank as u64) << 40) | ((peer as u64) << 24) | ((tag as u64) << 1) | u64::from(send)
    }

    fn advance(&mut self, ctx: &mut AppCtx<'_>) {
        while self.pc < self.script.len() {
            let phase: Phase = self.script[self.pc].clone();
            if phase.sends.is_empty() && phase.recvs.is_empty() {
                if phase.compute > Ps::ZERO {
                    ctx.compute(phase.compute);
                }
                if phase.mark {
                    self.shared.borrow_mut().marks.push(ctx.now());
                }
                self.pc += 1;
                continue;
            }
            for r in &phase.recvs {
                let req = ctx.irecv(
                    match_info(r.from, r.tag),
                    u64::MAX,
                    r.bytes,
                    Some(self.buf_tag(r.from, r.tag, false)),
                );
                self.waiting.insert(req);
            }
            for s in &phase.sends {
                let req = ctx.isend(
                    self.addrs[s.to],
                    match_info(self.rank, s.tag),
                    vec![0xC5u8; s.bytes as usize],
                    Some(self.buf_tag(s.to, s.tag, true)),
                );
                self.waiting.insert(req);
            }
            return; // wait for the phase to drain
        }
        if !self.done {
            self.done = true;
            if !self.finished_count {
                self.finished_count = true;
                self.shared.borrow_mut().done_ranks += 1;
            }
        }
    }
}

impl App for RankApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.advance(ctx);
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let req = comp.req();
        if !self.waiting.remove(&req) {
            return;
        }
        if !self.waiting.is_empty() {
            return;
        }
        // Phase drained: apply compute and marks, then continue.
        let phase = &self.script[self.pc];
        if phase.compute > Ps::ZERO {
            ctx.compute(phase.compute);
        }
        if phase.mark {
            self.shared.borrow_mut().marks.push(ctx.now());
        }
        self.pc += 1;
        self.advance(ctx);
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Run arbitrary per-rank scripts on a cluster.
pub fn run_scripts(params: ClusterParams, layout: Layout, scripts: Vec<Script>) -> KernelResult {
    let np = layout.np();
    assert_eq!(scripts.len(), np, "one script per rank");
    run_job(params, layout, move |rank| scripts[rank].clone())
}

/// Per-shard reduction of one (possibly partitioned) job. With
/// `partitions = 1` there is one tally and the merge in [`run_job`]
/// is the identity, so results match the historical single-engine
/// runner byte for byte.
struct ShardTally {
    marks: Vec<Ps>,
    done_ranks: usize,
    stats: open_mx::cluster::Stats,
    busy: open_mx::harness::BusyTotals,
    events: u64,
    end: Ps,
    skbuffs: u64,
    pinned: u64,
    load: ShardLoad,
}

/// Run one job from a per-rank script generator, partitioned per
/// `params.partitions` and fanned across `params.partition_workers`
/// threads (results are identical for any value of either knob).
///
/// `gen(rank)` builds rank `rank`'s script; each shard invokes it only
/// for the ranks whose nodes it owns, so a 4k-rank job never holds all
/// 4k scripts in one place.
pub fn run_job<G>(mut params: ClusterParams, layout: Layout, gen: G) -> KernelResult
where
    G: Fn(usize) -> Script + Sync,
{
    let np = layout.np();
    params.nodes = params.nodes.max(layout.nodes());
    let faults_active = params.cfg.fault_injection_active();
    let install = |cluster: &mut Cluster, _shard: usize| {
        let shared = Rc::new(RefCell::new(JobShared::default()));
        let addrs = Rc::new((0..np).map(|r| layout.addr(r)).collect::<Vec<EpAddr>>());
        for rank in 0..np {
            let (node, core) = layout.spec(rank);
            if !cluster.owns(node) {
                continue;
            }
            shared.borrow_mut().ranks_installed += 1;
            cluster.add_endpoint(
                node,
                core,
                Box::new(RankApp {
                    rank,
                    script: gen(rank),
                    pc: 0,
                    addrs: addrs.clone(),
                    waiting: BTreeSet::new(),
                    shared: shared.clone(),
                    done: false,
                    finished_count: false,
                }),
            );
        }
        shared
    };
    let finish = |_shard: usize,
                  sim: &mut Sim<Cluster>,
                  cluster: &mut Cluster,
                  shared: Rc<RefCell<JobShared>>| {
        // Thread-local sanitizer: quiesce on the worker that ran this
        // shard.
        omx_sim::sanitize::SimSanitizer::assert_quiesced();
        let sh = shared.borrow();
        let (skbuffs, pinned) = open_mx::harness::leak_counts(cluster);
        ShardTally {
            marks: sh.marks.clone(),
            done_ranks: sh.done_ranks,
            stats: cluster.stats_snapshot(),
            busy: open_mx::harness::BusyTotals::of(cluster),
            events: sim.events_executed(),
            end: sim.now(),
            skbuffs,
            pinned,
            load: ShardLoad {
                events: sim.events_executed(),
                peak_pending: sim.events_peak_pending(),
                ranks: sh.ranks_installed,
            },
        }
    };
    let tallies = open_mx::run_partitioned(params, install, finish);
    let mut marks = Vec::new();
    let mut stats: Option<open_mx::cluster::Stats> = None;
    let mut busy = open_mx::harness::BusyTotals::default();
    let (mut done_ranks, mut events) = (0usize, 0u64);
    let (mut skbuffs, mut pinned) = (0u64, 0u64);
    let mut end = Ps::ZERO;
    let mut shards = Vec::with_capacity(tallies.len());
    for t in tallies {
        shards.push(t.load);
        marks.extend(t.marks);
        done_ranks += t.done_ranks;
        match &mut stats {
            None => stats = Some(t.stats),
            Some(s) => s.absorb(&t.stats),
        }
        busy.absorb(&t.busy);
        events += t.events;
        end = end.max(t.end);
        skbuffs += t.skbuffs;
        pinned += t.pinned;
    }
    let stats = stats.expect("at least one shard");
    assert_eq!(
        done_ranks, np,
        "job deadlocked: {done_ranks}/{np} ranks finished"
    );
    // Marks from one shard are chronological; the merged sequence is
    // re-sorted (stably — the single-shard case is untouched) so the
    // timeline reads the same however the marking ranks were dealt.
    marks.sort();
    let time_per_iter = iter_time(&marks);
    let clean_wire = open_mx::harness::wire_stayed_clean(faults_active, &stats);
    KernelResult {
        time_per_iter,
        end,
        marks,
        breakdown: open_mx::harness::ComponentBreakdown::from_totals(&busy, end),
        verified: clean_wire && stats.sends_failed == 0,
        events_executed: events,
        stats,
        end_skbuffs_held: skbuffs,
        end_pinned_regions: pinned,
        shards,
    }
}

/// Steady-state iteration period from rank-0 marks, skipping warm-up.
fn iter_time(marks: &[Ps]) -> Ps {
    assert!(marks.len() >= 2, "need at least two marks for timing");
    let skip = (marks.len() / 4).min(2);
    let usable = &marks[skip..];
    if usable.len() >= 2 {
        (*usable.last().expect("nonempty") - usable[0]) / (usable.len() as u64 - 1)
    } else {
        (*marks.last().expect("nonempty") - marks[0]) / (marks.len() as u64 - 1)
    }
}

/// Run one IMB kernel.
pub fn run_kernel(
    kernel: Kernel,
    layout: Layout,
    size: u64,
    iters: u32,
    params: ClusterParams,
) -> KernelResult {
    let np = layout.np();
    run_job(params, layout, move |rank| {
        kernel.rank_script(rank, np, size, iters)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use open_mx::config::{OmxConfig, StackKind};

    fn params(stack: StackKind, ioat: bool) -> ClusterParams {
        let base = if ioat {
            OmxConfig::with_ioat()
        } else {
            OmxConfig::default()
        };
        ClusterParams::with_cfg(OmxConfig { stack, ..base })
    }

    #[test]
    fn layouts_place_ranks() {
        assert_eq!(Layout::OnePerNode.np(), 2);
        assert_eq!(Layout::TwoPerNode.np(), 4);
        assert_eq!(Layout::TwoPerNode.spec(0), (NodeId(0), CoreId(2)));
        assert_eq!(
            Layout::TwoPerNode.spec(1),
            (NodeId(1), CoreId(2)),
            "round-robin: rank 1 is remote"
        );
        assert_eq!(Layout::TwoPerNode.spec(2), (NodeId(0), CoreId(4)));
        assert_eq!(Layout::TwoPerNode.spec(3), (NodeId(1), CoreId(4)));
        assert_eq!(Layout::TwoPerNode.addr(3).ep, EpIdx(1));
    }

    #[test]
    fn pingpong_kernel_runs_on_openmx() {
        let r = run_kernel(
            Kernel::PingPong,
            Layout::OnePerNode,
            4096,
            8,
            params(StackKind::OpenMx, false),
        );
        assert!(r.time_per_iter > Ps::us(5), "{}", r.time_per_iter);
        assert!(r.time_per_iter < Ps::us(100), "{}", r.time_per_iter);
        assert_eq!(r.marks.len(), 8);
    }

    #[test]
    fn pingpong_kernel_runs_on_mxoe() {
        let r = run_kernel(
            Kernel::PingPong,
            Layout::OnePerNode,
            4096,
            8,
            params(StackKind::Mxoe, false),
        );
        // MX must beat Open-MX at this size.
        let omx = run_kernel(
            Kernel::PingPong,
            Layout::OnePerNode,
            4096,
            8,
            params(StackKind::OpenMx, false),
        );
        assert!(r.time_per_iter < omx.time_per_iter);
    }

    #[test]
    fn all_kernels_complete_both_layouts() {
        for k in Kernel::ALL {
            for layout in [Layout::OnePerNode, Layout::TwoPerNode] {
                let r = run_kernel(k, layout, 16 << 10, 4, params(StackKind::OpenMx, false));
                assert!(
                    r.time_per_iter > Ps::ZERO,
                    "{} {:?} produced no timing",
                    k.name(),
                    layout
                );
            }
        }
    }

    #[test]
    fn nodes_layout_places_one_rank_per_node() {
        let l = Layout::Nodes(8);
        assert_eq!(l.np(), 8);
        assert_eq!(l.nodes(), 8);
        assert_eq!(l.spec(5), (NodeId(5), CoreId(2)));
        assert_eq!(l.addr(5).ep, EpIdx(0));
    }

    #[test]
    fn partitioned_alltoall_matches_single_engine() {
        // The same 8-rank, 8-node alltoall split across 4 shards (on 4
        // worker threads) must reproduce the single-engine run exactly
        // — marks, end time, event count and the full serialized
        // stats. This is the job-level version of the harness identity
        // tests, crossing partition boundaries on every pairwise step.
        let run = |partitions: usize, workers: usize| {
            let mut p = params(StackKind::OpenMx, true);
            p.partitions = partitions;
            p.partition_workers = workers;
            run_kernel(Kernel::Alltoall, Layout::Nodes(8), 64 << 10, 3, p)
        };
        let single = run(1, 1);
        for (name, other) in [
            ("4 shards, 1 worker", run(4, 1)),
            ("4 shards, 4 workers", run(4, 4)),
        ] {
            assert_eq!(single.marks, other.marks, "{name}: marks");
            assert_eq!(single.end, other.end, "{name}: end time");
            assert_eq!(
                single.events_executed, other.events_executed,
                "{name}: event count"
            );
            assert_eq!(
                serde_json::to_string(&single.stats).unwrap(),
                serde_json::to_string(&other.stats).unwrap(),
                "{name}: serialized stats"
            );
        }
    }

    #[test]
    fn ioat_speeds_up_large_alltoall() {
        let base = run_kernel(
            Kernel::Alltoall,
            Layout::OnePerNode,
            1 << 20,
            4,
            params(StackKind::OpenMx, false),
        );
        let ioat = run_kernel(
            Kernel::Alltoall,
            Layout::OnePerNode,
            1 << 20,
            4,
            params(StackKind::OpenMx, true),
        );
        assert!(
            ioat.time_per_iter < base.time_per_iter,
            "I/OAT {} vs memcpy {}",
            ioat.time_per_iter,
            base.time_per_iter
        );
    }
}
