//! Byte-conservation properties of the IMB kernel script builders:
//! for random rank counts and message sizes, every kernel's generated
//! scripts must (a) pair every send with exactly one matching receive
//! (same endpoints, tag and byte count — the no-deadlock invariant)
//! and (b) conserve bytes per rank where the kernel is symmetric,
//! globally where it is not (Reduce and Bcast funnel bytes toward or
//! away from rank 0 by design).

use omx_mpi::Kernel;
use proptest::prelude::*;

/// Per-rank totals and the pairwise multisets for one script set.
struct Flow {
    sent: Vec<u64>,
    received: Vec<u64>,
    /// (from, to, tag, bytes) multiset as seen by senders.
    send_ops: Vec<(usize, usize, u32, u64)>,
    /// Same multiset as seen by receivers.
    recv_ops: Vec<(usize, usize, u32, u64)>,
}

fn flow(kernel: Kernel, np: usize, size: u64, iters: u32) -> Flow {
    let scripts = kernel.scripts(np, size, iters);
    assert_eq!(scripts.len(), np, "one script per rank");
    let mut f = Flow {
        sent: vec![0; np],
        received: vec![0; np],
        send_ops: Vec::new(),
        recv_ops: Vec::new(),
    };
    for (rank, script) in scripts.iter().enumerate() {
        for ph in script {
            for s in &ph.sends {
                assert!(
                    s.to < np,
                    "{}: send to rank {} of {np}",
                    kernel.name(),
                    s.to
                );
                assert_ne!(s.to, rank, "{}: self-send", kernel.name());
                f.sent[rank] += s.bytes;
                f.send_ops.push((rank, s.to, s.tag, s.bytes));
            }
            for r in &ph.recvs {
                assert!(
                    r.from < np,
                    "{}: recv from rank {} of {np}",
                    kernel.name(),
                    r.from
                );
                assert_ne!(r.from, rank, "{}: self-receive", kernel.name());
                f.received[rank] += r.bytes;
                f.recv_ops.push((r.from, rank, r.tag, r.bytes));
            }
        }
    }
    f.send_ops.sort_unstable();
    f.recv_ops.sort_unstable();
    f
}

/// Kernels whose data flow is symmetric: every rank receives exactly
/// as many bytes as it sends.
const SYMMETRIC: [Kernel; 9] = [
    Kernel::PingPong,
    Kernel::PingPing,
    Kernel::SendRecv,
    Kernel::Exchange,
    Kernel::Allreduce,
    Kernel::ReduceScatter,
    Kernel::Allgather,
    Kernel::Allgatherv,
    Kernel::Alltoall,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every send pairs with exactly one receive for every kernel, at
    /// random power-of-two rank counts and sizes.
    #[test]
    fn sends_and_receives_pair_up(
        np_log in 1usize..4,
        size in 2u64..(1 << 20),
        iters in 1u32..4,
    ) {
        let np = 1usize << np_log;
        for k in Kernel::ALL {
            let f = flow(k, np, size, iters);
            prop_assert_eq!(
                &f.send_ops, &f.recv_ops,
                "{} np={} size={}: unmatched ops", k.name(), np, size
            );
            prop_assert!(
                !f.send_ops.is_empty(),
                "{} np={} size={}: kernel moved no data", k.name(), np, size
            );
        }
    }

    /// Symmetric kernels conserve bytes per rank.
    #[test]
    fn symmetric_kernels_conserve_bytes_per_rank(
        np_log in 1usize..4,
        size in 2u64..(1 << 20),
        iters in 1u32..4,
    ) {
        let np = 1usize << np_log;
        for k in SYMMETRIC {
            let f = flow(k, np, size, iters);
            for rank in 0..np {
                prop_assert_eq!(
                    f.sent[rank], f.received[rank],
                    "{} np={} size={} rank {}: sent != received",
                    k.name(), np, size, rank
                );
            }
        }
    }

    /// Reduce funnels every non-root contribution to rank 0: the root
    /// only receives, leaves only send, and global bytes conserve.
    #[test]
    fn reduce_funnels_to_root(
        np_log in 1usize..4,
        size in 2u64..(1 << 20),
        iters in 1u32..4,
    ) {
        let np = 1usize << np_log;
        let f = flow(Kernel::Reduce, np, size, iters);
        // The root contributes in place: it never sends. Every other
        // rank sends its (partially reduced) contribution exactly once
        // per iteration — binomial reduction combines before
        // forwarding, so the per-hop payload stays `size` bytes.
        prop_assert_eq!(f.sent[0], 0);
        for rank in 1..np {
            prop_assert_eq!(
                f.sent[rank], size * iters as u64,
                "rank {} must send exactly one contribution per iteration", rank
            );
        }
        let total_sent: u64 = f.sent.iter().sum();
        let total_recv: u64 = f.received.iter().sum();
        prop_assert_eq!(total_sent, total_recv);
        prop_assert_eq!(total_recv, (np as u64 - 1) * size * iters as u64);
    }

    /// Bcast is the mirror image: the root only sends and every other
    /// rank absorbs exactly one copy per iteration.
    #[test]
    fn bcast_mirrors_reduce(
        np_log in 1usize..4,
        size in 2u64..(1 << 20),
        iters in 1u32..4,
    ) {
        let np = 1usize << np_log;
        let f = flow(Kernel::Bcast, np, size, iters);
        // The root keeps its copy and only sends; every other rank
        // absorbs exactly one copy per iteration (and may forward it
        // down the binomial tree any number of times).
        prop_assert_eq!(f.received[0], 0);
        for rank in 1..np {
            prop_assert_eq!(
                f.received[rank], size * iters as u64,
                "rank {} must receive exactly one copy per iteration", rank
            );
        }
        let total_sent: u64 = f.sent.iter().sum();
        let total_recv: u64 = f.received.iter().sum();
        prop_assert_eq!(total_sent, total_recv);
        prop_assert_eq!(total_recv, (np as u64 - 1) * size * iters as u64);
    }
}
