//! Hardware cost models for the reproduction testbed.
//!
//! The paper ran on dual quad-core Xeon E5345 "Clovertown" hosts (two
//! dual-core subchips per socket, 4 MB shared L2 per subchip) with the
//! Intel 5000X chipset providing a 4-channel I/OAT DMA engine. This
//! crate models exactly the quantities the paper's analysis depends on:
//!
//! * [`params::HwParams`] — every calibration constant, with defaults
//!   matching the numbers quoted in §IV-A of the paper,
//! * [`topology`] — cores, subchips, sockets and their cache-sharing
//!   distance,
//! * [`cache`] — a coarse per-subchip cache-occupancy model,
//! * [`mem`] — the memcpy cost model (cached / uncached / cross-socket,
//!   per-chunk startup),
//! * [`ioat`] — the I/OAT DMA engine (per-descriptor submission and
//!   hardware startup costs, raw copy rate, in-order poll-only
//!   completion, 4 independent channels),
//! * [`cpu`] — CPU cores as FIFO servers with per-category busy-time
//!   accounting (the basis of the paper's Figure 9).
//!
//! Everything here is *pure state + cost functions*: no event
//! scheduling. The `open-mx` cluster world interprets the returned
//! times, which keeps these models unit-testable in isolation.

pub mod cache;
pub mod cpu;
pub mod ioat;
pub mod mem;
pub mod params;
pub mod topology;

pub use cache::CacheModel;
pub use cpu::{Core, CpuSet};
pub use ioat::{CopyHandle, CopySegment, IoatEngine};
pub use mem::MemModel;
pub use params::HwParams;
pub use topology::{CoreId, Distance, SubchipId, Topology};
