//! Host topology: cores, dual-core subchips, sockets.
//!
//! The paper's hosts are dual-socket Xeon E5345 "Clovertown": each
//! socket carries two dual-core subchips and each subchip shares one
//! 4 MB L2 between its two cores (paper Fig 4). Cache sharing — not
//! socket boundaries — is what decides the Fig 10 memcpy rates, so the
//! central query here is [`Topology::distance`].

use serde::{Deserialize, Serialize};

/// Index of a CPU core on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u32);

/// Index of a dual-core subchip on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubchipId(pub u32);

/// Cache/socket relationship between two cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// The same core.
    SameCore,
    /// Different cores sharing an L2 (same dual-core subchip).
    SameSubchip,
    /// Same socket, different subchips (no shared L2 on Clovertown).
    SameSocket,
    /// Different sockets (traffic crosses the FSB/chipset).
    CrossSocket,
}

/// Shape of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of sockets.
    pub sockets: u32,
    /// Dual-core subchips per socket.
    pub subchips_per_socket: u32,
    /// Cores per subchip.
    pub cores_per_subchip: u32,
}

impl Default for Topology {
    /// The paper's host: 2 sockets × 2 subchips × 2 cores = 8 cores.
    fn default() -> Self {
        Topology {
            sockets: 2,
            subchips_per_socket: 2,
            cores_per_subchip: 2,
        }
    }
}

impl Topology {
    /// Total core count.
    pub fn num_cores(&self) -> u32 {
        self.sockets * self.subchips_per_socket * self.cores_per_subchip
    }

    /// Total subchip count.
    pub fn num_subchips(&self) -> u32 {
        self.sockets * self.subchips_per_socket
    }

    /// Subchip that owns `core`. Panics on an out-of-range core, which
    /// would indicate a wiring bug elsewhere.
    pub fn subchip_of(&self, core: CoreId) -> SubchipId {
        assert!(core.0 < self.num_cores(), "core {core:?} out of range");
        SubchipId(core.0 / self.cores_per_subchip)
    }

    /// Socket that owns `core`.
    pub fn socket_of(&self, core: CoreId) -> u32 {
        self.subchip_of(core).0 / self.subchips_per_socket
    }

    /// Cache/socket distance between two cores.
    pub fn distance(&self, a: CoreId, b: CoreId) -> Distance {
        if a == b {
            Distance::SameCore
        } else if self.subchip_of(a) == self.subchip_of(b) {
            Distance::SameSubchip
        } else if self.socket_of(a) == self.socket_of(b) {
            Distance::SameSocket
        } else {
            Distance::CrossSocket
        }
    }

    /// Iterate all cores.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// A core on a different socket than `core` (used to place a
    /// cross-socket peer); `None` on single-socket machines.
    pub fn peer_cross_socket(&self, core: CoreId) -> Option<CoreId> {
        let socket = self.socket_of(core);
        self.cores().find(|&c| self.socket_of(c) != socket)
    }

    /// The other core on the same subchip as `core`, if any.
    pub fn peer_same_subchip(&self, core: CoreId) -> Option<CoreId> {
        self.cores()
            .find(|&c| c != core && self.subchip_of(c) == self.subchip_of(core))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clovertown_shape() {
        let t = Topology::default();
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.num_subchips(), 4);
    }

    #[test]
    fn subchip_and_socket_mapping() {
        let t = Topology::default();
        assert_eq!(t.subchip_of(CoreId(0)), SubchipId(0));
        assert_eq!(t.subchip_of(CoreId(1)), SubchipId(0));
        assert_eq!(t.subchip_of(CoreId(2)), SubchipId(1));
        assert_eq!(t.subchip_of(CoreId(7)), SubchipId(3));
        assert_eq!(t.socket_of(CoreId(0)), 0);
        assert_eq!(t.socket_of(CoreId(3)), 0);
        assert_eq!(t.socket_of(CoreId(4)), 1);
        assert_eq!(t.socket_of(CoreId(7)), 1);
    }

    #[test]
    fn distances() {
        let t = Topology::default();
        assert_eq!(t.distance(CoreId(0), CoreId(0)), Distance::SameCore);
        assert_eq!(t.distance(CoreId(0), CoreId(1)), Distance::SameSubchip);
        assert_eq!(t.distance(CoreId(0), CoreId(2)), Distance::SameSocket);
        assert_eq!(t.distance(CoreId(0), CoreId(4)), Distance::CrossSocket);
        // Symmetry.
        assert_eq!(t.distance(CoreId(4), CoreId(0)), Distance::CrossSocket);
    }

    #[test]
    fn peer_helpers() {
        let t = Topology::default();
        assert_eq!(t.peer_same_subchip(CoreId(0)), Some(CoreId(1)));
        assert_eq!(t.peer_same_subchip(CoreId(1)), Some(CoreId(0)));
        let p = t.peer_cross_socket(CoreId(0)).unwrap();
        assert_eq!(t.socket_of(p), 1);
        // Single-socket machine has no cross-socket peer.
        let uni = Topology {
            sockets: 1,
            subchips_per_socket: 2,
            cores_per_subchip: 2,
        };
        assert_eq!(uni.peer_cross_socket(CoreId(0)), None);
        assert_eq!(uni.num_cores(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        Topology::default().subchip_of(CoreId(8));
    }
}
