//! The memcpy cost model.
//!
//! A CPU copy of `bytes` split into `chunks` pieces costs
//!
//! ```text
//! chunks * memcpy_chunk_overhead + bytes / rate
//! ```
//!
//! where `rate` blends the cached and uncached calibration rates by the
//! fraction of the source expected to hit in the copying core's L2
//! (blending happens in the *time* domain, which is the physically
//! correct way to mix rates). The uncached base rate depends on whether
//! source and destination are homed on the same socket.

use crate::params::HwParams;
use crate::topology::Distance;
use omx_sim::{Ps, Rate};

/// Context of one CPU copy, used to pick the base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyContext {
    /// Relationship between the copying core and the home of the
    /// destination buffer's owner (same subchip, cross socket, ...).
    pub distance: Distance,
    /// Fraction of the copied bytes expected L2-resident, in `[0, 1]`.
    pub cached_fraction: f64,
    /// Whether the cached portion is served from a *shared* L2 that two
    /// communicating processes contend on (the Fig 10 same-subchip
    /// ping-pong case) rather than a single core's private working set.
    pub shared_cache_pair: bool,
}

impl CopyContext {
    /// A fully uncached copy at `distance`.
    pub fn uncached(distance: Distance) -> Self {
        CopyContext {
            distance,
            cached_fraction: 0.0,
            shared_cache_pair: false,
        }
    }
}

/// Stateless memcpy cost calculator (all state lives in `HwParams` and
/// the caller-provided [`CopyContext`]).
#[derive(Debug, Clone, Default)]
pub struct MemModel;

impl MemModel {
    /// Base (uncached) rate for a given distance.
    pub fn uncached_rate(params: &HwParams, distance: Distance) -> Rate {
        match distance {
            Distance::CrossSocket => params.memcpy_rate_cross_socket,
            _ => params.memcpy_rate_uncached,
        }
    }

    /// Cached-portion rate for a context.
    pub fn cached_rate(params: &HwParams, ctx: &CopyContext) -> Rate {
        if ctx.shared_cache_pair {
            params.memcpy_rate_shared_cache_pair
        } else {
            params.memcpy_rate_cached
        }
    }

    /// Time for a CPU copy of `bytes` in `chunks` pieces under `ctx`.
    ///
    /// Zero bytes cost zero (no chunk overhead either: the call is
    /// elided). `chunks` is clamped to at least 1 for nonzero copies.
    pub fn copy_time(params: &HwParams, bytes: u64, chunks: u64, ctx: &CopyContext) -> Ps {
        if bytes == 0 {
            return Ps::ZERO;
        }
        let chunks = chunks.max(1);
        let f = ctx.cached_fraction.clamp(0.0, 1.0);
        let cached_bytes = (bytes as f64 * f).round() as u64;
        let uncached_bytes = bytes - cached_bytes.min(bytes);
        let t_cached = Self::cached_rate(params, ctx).time_for(cached_bytes.min(bytes));
        let t_uncached = Self::uncached_rate(params, ctx.distance).time_for(uncached_bytes);
        params.memcpy_chunk_overhead * chunks + t_cached + t_uncached
    }

    /// Convenience: copy time with page-sized chunking (the common case
    /// for skbuff→buffer copies, which split at page boundaries).
    pub fn copy_time_paged(params: &HwParams, bytes: u64, ctx: &CopyContext) -> Ps {
        let chunks = bytes.div_ceil(params.page_size).max(1);
        Self::copy_time(params, bytes, chunks, ctx)
    }

    /// Effective throughput of a copy (bytes per wall second) — used by
    /// the microbench figure to report MiB/s.
    pub fn effective_rate(params: &HwParams, bytes: u64, chunks: u64, ctx: &CopyContext) -> Rate {
        let t = Self::copy_time(params, bytes, chunks, ctx);
        Rate::from_transfer(bytes, t).unwrap_or_else(|| Rate::bytes_per_sec(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> HwParams {
        HwParams::default()
    }

    #[test]
    fn zero_bytes_zero_time() {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        assert_eq!(MemModel::copy_time(&p(), 0, 5, &ctx), Ps::ZERO);
    }

    #[test]
    fn uncached_copy_near_calibrated_rate() {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        let r = MemModel::effective_rate(&p(), 1 << 20, 256, &ctx);
        let gib = r.as_bytes_per_sec() as f64 / (1u64 << 30) as f64;
        // 256 × 50 ns of chunk overhead on a 1 MiB copy: a bit under 1.6.
        assert!((1.5..1.6).contains(&gib), "rate {gib} GiB/s");
    }

    #[test]
    fn cross_socket_is_slower() {
        let near = CopyContext::uncached(Distance::SameSocket);
        let far = CopyContext::uncached(Distance::CrossSocket);
        let tn = MemModel::copy_time(&p(), 1 << 20, 256, &near);
        let tf = MemModel::copy_time(&p(), 1 << 20, 256, &far);
        assert!(tf > tn);
        let ratio = tf.as_ps() as f64 / tn.as_ps() as f64;
        assert!((1.25..1.45).contains(&ratio), "1.6/1.2 ≈ 1.33, got {ratio}");
    }

    #[test]
    fn fully_cached_hits_12_gib() {
        let ctx = CopyContext {
            distance: Distance::SameSubchip,
            cached_fraction: 1.0,
            shared_cache_pair: false,
        };
        // Chunk startup costs keep the effective rate a little under
        // the raw 12 GiB/s calibration.
        let r = MemModel::effective_rate(&p(), 256 << 10, 64, &ctx);
        let gib = r.as_bytes_per_sec() as f64 / (1u64 << 30) as f64;
        assert!((10.0..12.0).contains(&gib), "rate {gib} GiB/s");
    }

    #[test]
    fn shared_pair_cached_hits_6_gib() {
        let ctx = CopyContext {
            distance: Distance::SameSubchip,
            cached_fraction: 1.0,
            shared_cache_pair: true,
        };
        let r = MemModel::effective_rate(&p(), 256 << 10, 64, &ctx);
        let gib = r.as_bytes_per_sec() as f64 / (1u64 << 30) as f64;
        assert!((5.5..6.0).contains(&gib), "rate {gib} GiB/s");
    }

    #[test]
    fn blend_is_monotone_in_cached_fraction() {
        let mut prev = Ps::MAX;
        for i in 0..=10 {
            let ctx = CopyContext {
                distance: Distance::SameSocket,
                cached_fraction: i as f64 / 10.0,
                shared_cache_pair: false,
            };
            let t = MemModel::copy_time(&p(), 1 << 20, 256, &ctx);
            assert!(t <= prev, "more cache must not be slower");
            prev = t;
        }
    }

    #[test]
    fn chunking_adds_linear_overhead() {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        let t1 = MemModel::copy_time(&p(), 1 << 20, 1, &ctx);
        let t256 = MemModel::copy_time(&p(), 1 << 20, 256, &ctx);
        assert_eq!(t256 - t1, p().memcpy_chunk_overhead * 255);
    }

    #[test]
    fn paged_chunking_counts_pages() {
        let ctx = CopyContext::uncached(Distance::SameSocket);
        let params = p();
        let a = MemModel::copy_time_paged(&params, 4096, &ctx);
        let b = MemModel::copy_time(&params, 4096, 1, &ctx);
        assert_eq!(a, b);
        let a = MemModel::copy_time_paged(&params, 8192, &ctx);
        let b = MemModel::copy_time(&params, 8192, 2, &ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_fraction_is_clamped() {
        let ctx = CopyContext {
            distance: Distance::SameSocket,
            cached_fraction: 7.5,
            shared_cache_pair: false,
        };
        let t = MemModel::copy_time(&p(), 4096, 1, &ctx);
        let full = CopyContext {
            cached_fraction: 1.0,
            ..ctx
        };
        assert_eq!(t, MemModel::copy_time(&p(), 4096, 1, &full));
    }
}
