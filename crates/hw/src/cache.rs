//! Coarse per-subchip cache-occupancy model.
//!
//! The simulation does not track cache lines; it tracks *regions*
//! (message buffers, rings) and how many of their bytes are plausibly
//! resident in each subchip's shared L2. That is enough to reproduce
//! the effects the paper reports: the 12 GiB/s cached memcpy, the
//! 6 GiB/s shared-cache ping-pong that collapses once the working set
//! outgrows the L2 (Fig 10), and the cache *pollution* argument for
//! I/OAT (offloaded copies never touch the model).
//!
//! Policy: LRU over regions, capped at the usable capacity from
//! [`HwParams::l2_usable_bytes`]. Touching a region makes it most
//! recently used and, if needed, evicts least-recently-used regions
//! (partially, byte-granular) to make room.

use crate::params::HwParams;
use crate::topology::SubchipId;
use std::collections::BTreeMap;

/// Key identifying a cached region (one per buffer/ring in the world).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionKey(pub u64);

#[derive(Debug, Default, Clone)]
struct SubchipCache {
    /// Regions in LRU order: front = least recently used.
    lru: Vec<(RegionKey, u64)>,
}

impl SubchipCache {
    fn resident(&self, key: RegionKey) -> u64 {
        self.lru
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.lru.iter().map(|(_, b)| b).sum()
    }

    fn touch(&mut self, key: RegionKey, bytes: u64, capacity: u64) {
        // Remove any existing entry, then insert at the MRU end with the
        // new footprint (capped at capacity).
        self.lru.retain(|(k, _)| *k != key);
        let bytes = bytes.min(capacity);
        if bytes == 0 {
            return;
        }
        self.lru.push((key, bytes));
        // Evict from the LRU end until we fit.
        let mut total = self.total();
        let mut i = 0;
        while total > capacity && i < self.lru.len() {
            // Never evict the entry we just inserted (last element).
            if i == self.lru.len() - 1 {
                break;
            }
            let excess = total - capacity;
            let (_, b) = &mut self.lru[i];
            if *b <= excess {
                total -= *b;
                self.lru.remove(i);
                // Do not advance i: next entry shifted into place.
            } else {
                *b -= excess;
                total -= excess;
                i += 1;
            }
        }
    }

    fn invalidate(&mut self, key: RegionKey) {
        self.lru.retain(|(k, _)| *k != key);
    }
}

/// Cache occupancy for every subchip of one host.
#[derive(Debug, Default, Clone)]
pub struct CacheModel {
    subchips: BTreeMap<SubchipId, SubchipCache>,
}

impl CacheModel {
    /// An empty (cold) cache model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a core on `subchip` streamed through `bytes` of
    /// `region` (a CPU copy touched it — I/OAT copies must NOT call
    /// this; bypassing the cache is exactly their advantage).
    pub fn touch(&mut self, params: &HwParams, subchip: SubchipId, key: RegionKey, bytes: u64) {
        self.subchips
            .entry(subchip)
            .or_default()
            .touch(key, bytes, params.l2_usable_bytes());
    }

    /// Record a *write* to `region` by a core on `subchip`: coherence
    /// invalidates every other subchip's copy (MESI exclusive
    /// ownership), then the writer's L2 holds it.
    pub fn touch_exclusive(
        &mut self,
        params: &HwParams,
        subchip: SubchipId,
        key: RegionKey,
        bytes: u64,
    ) {
        for (s, c) in self.subchips.iter_mut() {
            if *s != subchip {
                c.invalidate(key);
            }
        }
        self.touch(params, subchip, key, bytes);
    }

    /// Bytes of `region` currently resident in `subchip`'s L2.
    pub fn resident(&self, subchip: SubchipId, key: RegionKey) -> u64 {
        self.subchips
            .get(&subchip)
            .map(|c| c.resident(key))
            .unwrap_or(0)
    }

    /// Fraction of a `bytes`-long access to `region` expected to hit in
    /// `subchip`'s L2, in `[0, 1]`.
    pub fn hit_fraction(&self, subchip: SubchipId, key: RegionKey, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let res = self.resident(subchip, key).min(bytes);
        res as f64 / bytes as f64
    }

    /// Drop a region everywhere (buffer freed / unmapped).
    pub fn invalidate(&mut self, key: RegionKey) {
        for c in self.subchips.values_mut() {
            c.invalidate(key);
        }
    }

    /// Total bytes resident on `subchip` (diagnostics).
    pub fn occupancy(&self, subchip: SubchipId) -> u64 {
        self.subchips.get(&subchip).map(|c| c.total()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> HwParams {
        // 4 MiB L2, 50 % usable → 2 MiB capacity.
        HwParams::default()
    }

    const S0: SubchipId = SubchipId(0);
    const S1: SubchipId = SubchipId(1);

    #[test]
    fn cold_cache_misses() {
        let c = CacheModel::new();
        assert_eq!(c.resident(S0, RegionKey(1)), 0);
        assert_eq!(c.hit_fraction(S0, RegionKey(1), 4096), 0.0);
        assert_eq!(c.hit_fraction(S0, RegionKey(1), 0), 0.0);
    }

    #[test]
    fn touch_makes_region_resident_per_subchip() {
        let p = params();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), 64 << 10);
        assert_eq!(c.resident(S0, RegionKey(1)), 64 << 10);
        assert_eq!(c.resident(S1, RegionKey(1)), 0, "caches are private");
        assert_eq!(c.hit_fraction(S0, RegionKey(1), 64 << 10), 1.0);
        assert_eq!(c.hit_fraction(S0, RegionKey(1), 128 << 10), 0.5);
    }

    #[test]
    fn footprint_caps_at_capacity() {
        let p = params();
        let cap = p.l2_usable_bytes();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), 16 << 20); // 16 MiB stream
        assert_eq!(c.resident(S0, RegionKey(1)), cap);
        // A 16 MiB re-read only hits on the resident tail.
        let f = c.hit_fraction(S0, RegionKey(1), 16 << 20);
        assert!((f - cap as f64 / (16u64 << 20) as f64).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let p = params();
        let cap = p.l2_usable_bytes(); // 2 MiB
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), cap / 2);
        c.touch(&p, S0, RegionKey(2), cap / 2);
        // Both fit exactly.
        assert_eq!(c.resident(S0, RegionKey(1)), cap / 2);
        assert_eq!(c.resident(S0, RegionKey(2)), cap / 2);
        // A third region of half capacity evicts region 1 (LRU).
        c.touch(&p, S0, RegionKey(3), cap / 2);
        assert_eq!(c.resident(S0, RegionKey(1)), 0);
        assert_eq!(c.resident(S0, RegionKey(2)), cap / 2);
        assert_eq!(c.resident(S0, RegionKey(3)), cap / 2);
    }

    #[test]
    fn partial_eviction_trims_lru_region() {
        let p = params();
        let cap = p.l2_usable_bytes();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), cap);
        c.touch(&p, S0, RegionKey(2), cap / 4);
        assert_eq!(c.resident(S0, RegionKey(2)), cap / 4);
        assert_eq!(c.resident(S0, RegionKey(1)), cap - cap / 4);
        assert!(c.occupancy(S0) <= cap);
    }

    #[test]
    fn retouching_refreshes_lru_position() {
        let p = params();
        let cap = p.l2_usable_bytes();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), cap / 2);
        c.touch(&p, S0, RegionKey(2), cap / 2);
        // Refresh region 1, then insert region 3: region 2 must go.
        c.touch(&p, S0, RegionKey(1), cap / 2);
        c.touch(&p, S0, RegionKey(3), cap / 2);
        assert_eq!(c.resident(S0, RegionKey(1)), cap / 2);
        assert_eq!(c.resident(S0, RegionKey(2)), 0);
    }

    #[test]
    fn invalidate_drops_region_everywhere() {
        let p = params();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), 4096);
        c.touch(&p, S1, RegionKey(1), 4096);
        c.invalidate(RegionKey(1));
        assert_eq!(c.resident(S0, RegionKey(1)), 0);
        assert_eq!(c.resident(S1, RegionKey(1)), 0);
    }

    #[test]
    fn zero_byte_touch_is_noop() {
        let p = params();
        let mut c = CacheModel::new();
        c.touch(&p, S0, RegionKey(1), 0);
        assert_eq!(c.occupancy(S0), 0);
    }
}
