//! Calibration constants.
//!
//! Every number the simulation charges for comes from this struct, and
//! each default is traceable to the paper (§IV-A micro-benchmarks and
//! the hardware description in §IV) or to well-known Linux costs the
//! paper cites. Experiments that want a different machine build a
//! modified `HwParams` — nothing else in the stack hard-codes a cost.

use omx_sim::{Ps, Rate};
use serde::{Deserialize, Serialize};

/// Calibration constants for one host (and the wire between hosts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwParams {
    // ---------------- memcpy ----------------
    /// CPU copy rate when the data is not cache-resident, source and
    /// destination on the same socket. Paper §IV-A: "the processor copy
    /// rate is about 1.6 GiB/s".
    pub memcpy_rate_uncached: Rate,
    /// CPU copy rate when the working set is L2-resident for the
    /// copying core. Paper §IV-A: "if the data fits in the cache, the
    /// memcpy performance may reach up to 12 GiB/s".
    pub memcpy_rate_cached: Rate,
    /// CPU copy rate between buffers homed on different sockets.
    /// Paper Fig 10: cross-socket ping-pong memcpy sustains ~1.2 GiB/s.
    pub memcpy_rate_cross_socket: Rate,
    /// Effective rate of the Fig 10 shared-cache case: two processes on
    /// the same dual-core subchip re-using an L2-resident buffer reach
    /// ~6 GiB/s (lower than the single-core 12 GiB/s because both cores
    /// contend on the shared L2).
    pub memcpy_rate_shared_cache_pair: Rate,
    /// Fixed startup per memcpy chunk (loop setup, alignment handling).
    /// Small — the paper notes chunking barely hurts memcpy.
    pub memcpy_chunk_overhead: Ps,

    // ---------------- caches ----------------
    /// Shared L2 capacity per dual-core subchip (Clovertown: 4 MiB).
    pub l2_cache_bytes: u64,
    /// Fraction of L2 usable by message buffers before eviction starts;
    /// the rest holds rings, stacks and other pollution.
    pub l2_usable_fraction: f64,

    // ---------------- I/OAT DMA engine ----------------
    /// Number of independent DMA channels (paper §V footnote: 4).
    pub ioat_channels: usize,
    /// CPU time to submit one copy descriptor to the hardware.
    /// Paper §IV-A: "we first measured the submission time on our
    /// machine to about 350 nanoseconds".
    pub ioat_submit_cpu: Ps,
    /// CPU time to *chain* one further descriptor behind an already
    /// rung doorbell when batched submission (`OmxConfig::ioat_batch`)
    /// is on: descriptor setup and next-pointer link, without the
    /// MMIO doorbell write. Defaults to [`Self::ioat_submit_cpu`], so
    /// a batch costs exactly what per-descriptor submission does until
    /// an experiment lowers it — the `batch_doorbell` study sweeps
    /// this to ask whether amortized submission flips the paper's
    /// medium-message offload verdict.
    pub ioat_desc_chain_cpu: Ps,
    /// Hardware startup per descriptor (fetch + setup inside the DMA
    /// engine). Calibrated with `ioat_raw_rate` so that 4 kB-chunked
    /// streams sustain ≈2.4 GiB/s and 1 kB chunks land at memcpy parity
    /// (both from Fig 7).
    pub ioat_desc_overhead: Ps,
    /// Raw copy rate of one DMA channel once a descriptor is running.
    pub ioat_raw_rate: Rate,
    /// Aggregate copy bandwidth of the whole engine across all
    /// channels: the memory/chipset port is shared, which is why using
    /// multiple channels only buys "up to 40 %" more throughput
    /// (related work [22] cited in §V), not 4×.
    pub ioat_aggregate_rate: Rate,
    /// CPU time for one completion poll (a read of the in-order
    /// completion word in host memory). Paper §IV-A: "very cheap".
    pub ioat_poll_cost: Ps,

    // ---------------- OS / CPU ----------------
    /// System-call entry/exit. Paper footnote 1: "close to 100
    /// nanoseconds on recent Intel processors".
    pub syscall_cost: Ps,
    /// CPU time of the hard-IRQ handler that schedules the bottom half.
    pub irq_cpu_cost: Ps,
    /// Delay between a NIC raising an interrupt and the bottom half
    /// starting to run (softirq dispatch latency).
    pub bh_dispatch_delay: Ps,
    /// CPU time to pin one page (get_user_pages per-page cost).
    /// Open-MX registration is cheap: no NIC translation tables.
    pub pin_page_cost: Ps,
    /// Fixed CPU time per registration call (syscall body, bookkeeping).
    pub pin_base_cost: Ps,
    /// Page size (4 kB everywhere in the paper).
    pub page_size: u64,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            memcpy_rate_uncached: Rate::gib_per_sec_f64(1.6),
            memcpy_rate_cached: Rate::gib_per_sec(12),
            memcpy_rate_cross_socket: Rate::gib_per_sec_f64(1.2),
            memcpy_rate_shared_cache_pair: Rate::gib_per_sec(6),
            memcpy_chunk_overhead: Ps::ns(50),
            l2_cache_bytes: 4 << 20,
            // Rings, stacks, code and the peer process's own working
            // set share the L2; roughly a quarter is available to one
            // message buffer stream. This puts the Fig 10 shared-cache
            // collapse right at the paper's ~1 MB.
            l2_usable_fraction: 0.25,
            ioat_channels: 4,
            ioat_submit_cpu: Ps::ns(350),
            ioat_desc_chain_cpu: Ps::ns(350),
            ioat_desc_overhead: Ps::ns(390),
            ioat_raw_rate: Rate::gib_per_sec_f64(3.18),
            ioat_aggregate_rate: Rate::gib_per_sec_f64(3.36),
            ioat_poll_cost: Ps::ns(50),
            syscall_cost: Ps::ns(100),
            irq_cpu_cost: Ps::ns(500),
            bh_dispatch_delay: Ps::ns(800),
            pin_page_cost: Ps::ns(220),
            pin_base_cost: Ps::ns(300),
            page_size: 4096,
        }
    }
}

impl HwParams {
    /// Usable L2 bytes for message data on one subchip.
    pub fn l2_usable_bytes(&self) -> u64 {
        (self.l2_cache_bytes as f64 * self.l2_usable_fraction) as u64
    }

    /// Number of pages spanned by `bytes` starting at a page boundary.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_size).max(1)
    }

    /// Registration (pinning) cost for a buffer of `bytes`.
    pub fn pin_cost(&self, bytes: u64) -> Ps {
        self.pin_base_cost + self.pin_page_cost * self.pages_for(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_quotes() {
        let p = HwParams::default();
        assert_eq!(p.ioat_submit_cpu, Ps::ns(350));
        // The chain cost must default to the full submission cost so
        // that batched submission is cost-identical until an
        // experiment lowers it.
        assert_eq!(p.ioat_desc_chain_cpu, p.ioat_submit_cpu);
        assert_eq!(p.syscall_cost, Ps::ns(100));
        assert_eq!(p.ioat_channels, 4);
        assert_eq!(p.l2_cache_bytes, 4 << 20);
        assert!((p.memcpy_rate_uncached.as_mib_per_sec() - 1638.4).abs() < 1.0);
        assert!((p.memcpy_rate_cached.as_mib_per_sec() - 12288.0).abs() < 1.0);
    }

    #[test]
    fn ioat_calibration_sustains_fig7_rates() {
        // 4 kB descriptors: time per chunk = 4096/raw + overhead should
        // put sustained throughput near the paper's 2.4 GiB/s.
        let p = HwParams::default();
        let per_chunk = p.ioat_raw_rate.time_for(4096) + p.ioat_desc_overhead;
        let sustained = 4096.0 / per_chunk.as_secs_f64() / (1u64 << 30) as f64;
        assert!(
            (sustained - 2.4).abs() < 0.15,
            "4 kB-chunk I/OAT rate {sustained} GiB/s, expected ≈2.4"
        );
        // 1 kB descriptors: near memcpy parity (within ~15 %).
        let per_chunk = p.ioat_raw_rate.time_for(1024) + p.ioat_desc_overhead;
        let ioat_1k = 1024.0 / per_chunk.as_secs_f64();
        let per_chunk = p.memcpy_rate_uncached.time_for(1024) + p.memcpy_chunk_overhead;
        let memcpy_1k = 1024.0 / per_chunk.as_secs_f64();
        let ratio = ioat_1k / memcpy_1k;
        assert!((0.85..1.15).contains(&ratio), "1 kB parity ratio {ratio}");
        // 256 B descriptors: far below memcpy.
        let per_chunk = p.ioat_raw_rate.time_for(256) + p.ioat_desc_overhead;
        let ioat_256 = 256.0 / per_chunk.as_secs_f64();
        let per_chunk = p.memcpy_rate_uncached.time_for(256) + p.memcpy_chunk_overhead;
        let memcpy_256 = 256.0 / per_chunk.as_secs_f64();
        assert!(ioat_256 < 0.6 * memcpy_256);
    }

    #[test]
    fn cpu_breakeven_is_near_600_bytes() {
        // Paper §IV-A: at the 1.6 GiB/s copy rate, ~600 bytes can be
        // memcpy'd in the 350 ns it takes to submit one descriptor.
        let p = HwParams::default();
        let b600 = p.memcpy_rate_uncached.time_for(600);
        assert!(
            b600 >= p.ioat_submit_cpu.saturating_sub(Ps::ns(15))
                && b600 <= p.ioat_submit_cpu + Ps::ns(15),
            "600 B memcpy {b600} vs submit {}",
            p.ioat_submit_cpu
        );
        // Cached break-even ≈ 2 kB at 12 GiB/s... the paper rounds:
        // 2 kB / 12 GiB/s ≈ 160 ns; their "2 kB if in the cache" uses
        // the ~6 GiB/s effective shared rate. Check that band instead.
        let b2k = p.memcpy_rate_shared_cache_pair.time_for(2048);
        assert!(b2k <= p.ioat_submit_cpu && b2k >= p.ioat_submit_cpu / 2);
    }

    #[test]
    fn pin_cost_scales_with_pages() {
        let p = HwParams::default();
        let one = p.pin_cost(1);
        let page = p.pin_cost(4096);
        assert_eq!(one, page, "both span one page");
        let two = p.pin_cost(4097);
        assert_eq!(two - one, p.pin_page_cost);
        assert_eq!(p.pages_for(0), 1);
        assert_eq!(p.pages_for(4096), 1);
        assert_eq!(p.pages_for(4097), 2);
        assert_eq!(p.pages_for(1 << 20), 256);
    }

    #[test]
    fn l2_usable_respects_fraction() {
        let mut p = HwParams {
            l2_usable_fraction: 0.5,
            ..HwParams::default()
        };
        assert_eq!(p.l2_usable_bytes(), 2 << 20);
        p.l2_usable_fraction = 1.0;
        assert_eq!(p.l2_usable_bytes(), 4 << 20);
    }
}
