//! CPU cores with per-category busy accounting.
//!
//! Each core is a FIFO server: driver syscalls, bottom halves and
//! application work queue behind one another on the core they are
//! pinned/dispatched to. Every piece of work carries a category label;
//! the integrated per-category busy time divided by the experiment
//! duration is what the paper's Figure 9 plots (user-library vs driver
//! vs bottom-half receive CPU usage).

use crate::topology::{CoreId, Topology};
use omx_sim::{BusyMeter, FifoServer, Ps};

/// Category labels used across the stack. Plain `&'static str` so the
/// meter stays allocation-free and new categories need no enum churn.
pub mod category {
    /// User-space library work (posting requests, reaping events,
    /// copying ring data into application buffers).
    pub const USER_LIB: &str = "user-library";
    /// Driver work performed in syscall context (commands, pinning,
    /// shared-memory copies).
    pub const DRIVER: &str = "driver";
    /// Bottom-half receive processing (header decode, copies, I/OAT
    /// submissions, completion polling).
    pub const BH: &str = "bottom-half";
    /// Hard-IRQ handler time.
    pub const IRQ: &str = "irq";
    /// Application compute time (used by MPI kernels).
    pub const APP: &str = "app";
}

/// One CPU core.
#[derive(Debug, Clone, Default)]
pub struct Core {
    server: FifoServer,
    meter: BusyMeter,
}

impl Core {
    /// Run `work` of the given `cat` starting no earlier than `now`;
    /// returns `(start, finish)` after FIFO queueing on this core.
    pub fn run(&mut self, now: Ps, work: Ps, cat: &'static str) -> (Ps, Ps) {
        let span = self.server.admit(now, work);
        self.meter.charge(cat, work);
        span
    }

    /// When this core next becomes idle.
    pub fn busy_until(&self) -> Ps {
        self.server.busy_until()
    }

    /// Busy time charged to `cat` so far.
    pub fn busy_in(&self, cat: &str) -> Ps {
        self.meter.total(cat)
    }

    /// The category meter (read-only).
    pub fn meter(&self) -> &BusyMeter {
        &self.meter
    }

    /// Total busy time across categories.
    pub fn busy_total(&self) -> Ps {
        self.server.busy_total()
    }
}

/// All cores of one host.
#[derive(Debug, Clone)]
pub struct CpuSet {
    topology: Topology,
    cores: Vec<Core>,
}

impl CpuSet {
    /// Cores for `topology`, all idle.
    pub fn new(topology: Topology) -> Self {
        CpuSet {
            topology,
            cores: (0..topology.num_cores()).map(|_| Core::default()).collect(),
        }
    }

    /// The host topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to one core.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Core {
        &mut self.cores[id.0 as usize]
    }

    /// Shared access to one core.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.0 as usize]
    }

    /// Run work on a core (convenience forwarding to [`Core::run`]).
    pub fn run_on(&mut self, core: CoreId, now: Ps, work: Ps, cat: &'static str) -> (Ps, Ps) {
        self.core_mut(core).run(now, work, cat)
    }

    /// Host-wide meter: sum of all per-core meters.
    pub fn merged_meter(&self) -> BusyMeter {
        let mut m = BusyMeter::new();
        for c in &self.cores {
            m.merge(c.meter());
        }
        m
    }

    /// Utilization of one category on one core over `[0, horizon]`.
    pub fn utilization(&self, core: CoreId, cat: &str, horizon: Ps) -> f64 {
        if horizon == Ps::ZERO {
            return 0.0;
        }
        self.core(core).busy_in(cat).as_ps() as f64 / horizon.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_queues_fifo_per_core() {
        let mut cpus = CpuSet::new(Topology::default());
        let (s1, f1) = cpus.run_on(CoreId(0), Ps::ZERO, Ps::us(10), category::BH);
        let (s2, f2) = cpus.run_on(CoreId(0), Ps::us(2), Ps::us(5), category::DRIVER);
        assert_eq!((s1, f1), (Ps::ZERO, Ps::us(10)));
        assert_eq!((s2, f2), (Ps::us(10), Ps::us(15)));
        // A different core is unaffected.
        let (s3, _) = cpus.run_on(CoreId(1), Ps::us(2), Ps::us(5), category::BH);
        assert_eq!(s3, Ps::us(2));
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut cpus = CpuSet::new(Topology::default());
        cpus.run_on(CoreId(0), Ps::ZERO, Ps::us(10), category::BH);
        cpus.run_on(CoreId(0), Ps::ZERO, Ps::us(4), category::DRIVER);
        cpus.run_on(CoreId(1), Ps::ZERO, Ps::us(6), category::BH);
        assert_eq!(cpus.core(CoreId(0)).busy_in(category::BH), Ps::us(10));
        assert_eq!(cpus.core(CoreId(0)).busy_in(category::DRIVER), Ps::us(4));
        let merged = cpus.merged_meter();
        assert_eq!(merged.total(category::BH), Ps::us(16));
        assert_eq!(merged.total(category::DRIVER), Ps::us(4));
        assert_eq!(merged.total(category::USER_LIB), Ps::ZERO);
    }

    #[test]
    fn utilization_per_core_category() {
        let mut cpus = CpuSet::new(Topology::default());
        cpus.run_on(CoreId(2), Ps::ZERO, Ps::us(95), category::BH);
        let u = cpus.utilization(CoreId(2), category::BH, Ps::us(100));
        assert!((u - 0.95).abs() < 1e-9, "the Fig 9 saturated-core case");
        assert_eq!(cpus.utilization(CoreId(2), category::BH, Ps::ZERO), 0.0);
    }

    #[test]
    fn busy_until_reflects_backlog() {
        let mut cpus = CpuSet::new(Topology::default());
        cpus.run_on(CoreId(0), Ps::ZERO, Ps::us(3), category::BH);
        assert_eq!(cpus.core(CoreId(0)).busy_until(), Ps::us(3));
        assert_eq!(cpus.core(CoreId(0)).busy_total(), Ps::us(3));
    }
}
