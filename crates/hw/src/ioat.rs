//! The I/OAT DMA engine model.
//!
//! The engine has `ioat_channels` independent channels (4 on the Intel
//! 5000X). Each channel executes its descriptor queue in FIFO order;
//! one descriptor copies up to one contiguous chunk and costs
//!
//! ```text
//! ioat_desc_overhead + chunk_bytes / ioat_raw_rate
//! ```
//!
//! of channel time. Submitting a descriptor costs the *CPU*
//! `ioat_submit_cpu` (350 ns, §IV-A). Completions are reported in order
//! per channel through a word in host memory, so "is copy X done?" is a
//! single cheap read (`ioat_poll_cost`) — and crucially there are *no
//! interrupts*: a waiter must poll (§III-C, §VI).
//!
//! Copies offloaded here bypass the CPU caches entirely — callers must
//! not touch the [`crate::cache::CacheModel`] for offloaded bytes.
//! That models both I/OAT advantages the paper names: overlap and no
//! cache pollution.

use crate::params::HwParams;
use omx_sim::sanitize::{Kind, SimSanitizer, Token};
use omx_sim::{FifoServer, Metrics, Ps};
use serde::{Deserialize, Serialize};

/// Identifier of one submitted copy (channel + in-channel cookie).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CopyHandle {
    /// Channel the copy was queued on.
    pub channel: usize,
    /// Monotone per-channel sequence number.
    pub cookie: u64,
    /// Time at which the hardware finishes this copy.
    pub finish: Ps,
    /// Lifecycle sanitizer token (zero-sized in release builds). The
    /// handle is minted in the `submitted` state; the driver that
    /// reaps or abandons the copy must `complete`/`release` it.
    pub san: Token,
}

/// Completion time reported for a copy caught on a permanently failed
/// channel: far enough in the future that no simulation ever reaches
/// it (an hour of simulated time), small enough that adding poll
/// deadlines to it never overflows. Drivers treat any completion at or
/// beyond this horizon as "the hardware will never answer" and fall
/// back to CPU memcpy.
pub const STALLED_FOREVER: Ps = Ps::secs(3600);

/// One segment of a batched submission ([`IoatEngine::submit_batch`]):
/// `bytes` moved as `descriptors` chained descriptors on `channel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopySegment {
    /// Channel the segment is queued on.
    pub channel: usize,
    /// Bytes this segment copies.
    pub bytes: u64,
    /// Descriptors the segment occupies.
    pub descriptors: u64,
}

/// Result of probing a channel's health before submitting to it
/// (Linux dmaengine keeps the same tri-state: usable, blacklisted, or
/// just returned from blacklist after a successful re-probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelProbe {
    /// Channel is usable.
    Healthy,
    /// Channel is quarantined; use the CPU fallback.
    Quarantined,
    /// Quarantine cool-down expired: this probe re-enabled the channel.
    Reprobed,
}

/// One scheduled hardware fault on a channel: from `at`, the channel
/// stops retiring descriptors for `duration` (`None` = forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChannelFault {
    at: Ps,
    until: Option<Ps>,
}

#[derive(Debug, Clone, Default)]
struct Channel {
    server: FifoServer,
    next_cookie: u64,
    /// Scheduled faults (injected by the test/fault plan).
    faults: Vec<ChannelFault>,
    /// While set, the driver has blacklisted this channel; cleared by
    /// a successful re-probe after the cool-down expires.
    quarantined_until: Option<Ps>,
}

/// The DMA engine: a set of FIFO channels plus submission bookkeeping.
/// All channels share one memory port ([`HwParams::ioat_aggregate_rate`]),
/// so concurrent channels cannot multiply bandwidth beyond the chipset.
#[derive(Debug, Clone)]
pub struct IoatEngine {
    channels: Vec<Channel>,
    /// Shared chipset/memory port all channels drain through.
    memory_port: FifoServer,
    rr_next: usize,
    bytes_copied: u64,
    descriptors: u64,
    /// Observability sink (disabled by default; see [`Self::attach_metrics`]).
    metrics: Metrics,
    scope: u32,
}

impl IoatEngine {
    /// An engine with the channel count from `params`.
    pub fn new(params: &HwParams) -> Self {
        assert!(params.ioat_channels > 0, "need at least one DMA channel");
        IoatEngine {
            channels: vec![Channel::default(); params.ioat_channels],
            memory_port: FifoServer::new(),
            rr_next: 0,
            bytes_copied: 0,
            descriptors: 0,
            metrics: Metrics::disabled(),
            scope: 0,
        }
    }

    /// Report per-channel busy time, the shared memory-port busy time,
    /// and byte/descriptor counters to `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        for ch in &mut self.channels {
            ch.server
                .attach_meter(metrics.clone(), scope, "ioat.channel");
        }
        self.memory_port
            .attach_meter(metrics.clone(), scope, "ioat.mem_port");
        self.metrics = metrics;
        self.scope = scope;
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Round-robin channel pick (the paper assigns one channel per
    /// message and relies on many concurrent messages to spread load).
    pub fn pick_channel_rr(&mut self) -> usize {
        let ch = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.channels.len();
        ch
    }

    /// Channel with the earliest `busy_until` (used by the multi-channel
    /// ablation).
    pub fn pick_channel_least_loaded(&self) -> usize {
        self.channels
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.server.busy_until())
            .map(|(i, _)| i)
            .expect("at least one channel")
    }

    /// CPU cost of submitting `descriptors` copy descriptors, one
    /// full submission (descriptor setup + doorbell) each — the
    /// paper's §IV-A model.
    pub fn submit_cpu_cost(params: &HwParams, descriptors: u64) -> Ps {
        params.ioat_submit_cpu * descriptors
    }

    /// CPU cost of submitting `descriptors` copy descriptors as one
    /// chained batch. With `doorbell` the first descriptor pays the
    /// full [`HwParams::ioat_submit_cpu`] (setup + MMIO doorbell) and
    /// each further one only the chaining cost
    /// [`HwParams::ioat_desc_chain_cpu`]; without it the caller is
    /// extending a batch whose doorbell was already rung (the tail of
    /// a GRO fragment train), so every descriptor is a chain append.
    /// Zero descriptors cost nothing. With the default parameters
    /// (`ioat_desc_chain_cpu == ioat_submit_cpu`) this equals
    /// [`Self::submit_cpu_cost`] exactly.
    pub fn submit_cpu_cost_batched(params: &HwParams, descriptors: u64, doorbell: bool) -> Ps {
        if descriptors == 0 {
            return Ps::ZERO;
        }
        if doorbell {
            params.ioat_submit_cpu + params.ioat_desc_chain_cpu * (descriptors - 1)
        } else {
            params.ioat_desc_chain_cpu * descriptors
        }
    }

    /// Schedule a hardware fault: from `at`, `channel` stops retiring
    /// descriptors for `duration` (`None` = the channel dies
    /// permanently). Copies whose completion would land inside the
    /// window are delayed past it (or forever); the driver's
    /// completion-poll deadline turns that into a memcpy fallback.
    pub fn inject_channel_stall(&mut self, channel: usize, at: Ps, duration: Option<Ps>) {
        let until = duration.map(|d| at + d);
        self.channels[channel]
            .faults
            .push(ChannelFault { at, until });
    }

    /// Whether any fault is scheduled anywhere (diagnostics).
    pub fn has_injected_faults(&self) -> bool {
        self.channels.iter().any(|c| !c.faults.is_empty())
    }

    /// Blacklist `channel` until `until` (driver-side decision after a
    /// completion-poll deadline fired). Returns `true` when the channel
    /// was not already quarantined — callers count that as one
    /// quarantine event. An existing quarantine is only ever extended,
    /// never shortened.
    pub fn quarantine(&mut self, channel: usize, until: Ps) -> bool {
        let existing = self.channels[channel].quarantined_until;
        let newly = existing.is_none();
        self.channels[channel].quarantined_until = Some(match existing {
            Some(e) => e.max(until),
            None => until,
        });
        if newly {
            self.metrics.count(self.scope, "ioat.quarantines", 1);
        }
        newly
    }

    /// Probe `channel` health at `now` before submitting to it. An
    /// expired quarantine is cleared here — the dmaengine-style
    /// re-probe: the channel gets another chance, and if it is still
    /// dead the next poll deadline quarantines it again.
    pub fn probe_channel(&mut self, channel: usize, now: Ps) -> ChannelProbe {
        match self.channels[channel].quarantined_until {
            None => ChannelProbe::Healthy,
            Some(until) if now < until => ChannelProbe::Quarantined,
            Some(_) => {
                self.channels[channel].quarantined_until = None;
                self.metrics.count(self.scope, "ioat.reprobes", 1);
                ChannelProbe::Reprobed
            }
        }
    }

    /// Whether `channel` is currently quarantined (read-only; does not
    /// re-probe).
    pub fn is_quarantined(&self, channel: usize, now: Ps) -> bool {
        matches!(self.channels[channel].quarantined_until, Some(u) if now < u)
    }

    /// Number of descriptors needed to copy `bytes` with chunks of at
    /// most `chunk` bytes (page-aligned splitting in practice). A
    /// zero-length copy needs no descriptor at all.
    pub fn descriptors_for(bytes: u64, chunk: u64) -> u64 {
        assert!(chunk > 0, "chunk size must be positive");
        bytes.div_ceil(chunk)
    }

    /// Queue a copy of `bytes` as `descriptors` descriptors on
    /// `channel` at time `now` (after the submitting CPU has paid
    /// [`Self::submit_cpu_cost`]). Returns the handle carrying the
    /// hardware completion time.
    ///
    /// A zero-length copy costs nothing: no descriptor is queued, no
    /// channel or memory-port time is consumed, and the returned handle
    /// completes immediately at `now`.
    #[track_caller]
    pub fn submit(
        &mut self,
        params: &HwParams,
        now: Ps,
        channel: usize,
        bytes: u64,
        descriptors: u64,
    ) -> CopyHandle {
        if bytes == 0 {
            let ch = &mut self.channels[channel];
            let cookie = ch.next_cookie;
            ch.next_cookie += 1;
            self.metrics.count(self.scope, "ioat.zero_len_copies", 1);
            let san = SimSanitizer::alloc(Kind::IoatDescriptor);
            SimSanitizer::submit(san);
            return CopyHandle {
                channel,
                cookie,
                finish: now,
                san,
            };
        }
        let descriptors = descriptors.max(1);
        let ch = &mut self.channels[channel];
        let service =
            params.ioat_desc_overhead * descriptors + params.ioat_raw_rate.time_for(bytes);
        let (_, ch_finish) = ch.server.admit(now, service);
        // The shared memory port serializes the actual data movement
        // across channels; a copy completes when both its channel and
        // its share of the port are done.
        let cookie = ch.next_cookie;
        ch.next_cookie += 1;
        let (_, port_finish) = self
            .memory_port
            .admit(now, params.ioat_aggregate_rate.time_for(bytes));
        let mut finish = ch_finish.max(port_finish);
        // Apply scheduled hardware faults: a copy that would retire
        // inside a stall window is pushed past it; a copy caught by a
        // permanent failure never completes (see [`STALLED_FOREVER`]).
        for f in &self.channels[channel].faults {
            if finish <= f.at {
                continue; // retires before the fault hits
            }
            match f.until {
                Some(until) if now < until => {
                    finish += until.saturating_sub(now.max(f.at));
                    self.metrics.count(self.scope, "ioat.stalled_copies", 1);
                }
                Some(_) => {} // transient fault already over
                None => {
                    finish = finish.max(STALLED_FOREVER);
                    self.metrics.count(self.scope, "ioat.stalled_copies", 1);
                }
            }
        }
        self.bytes_copied += bytes;
        self.descriptors += descriptors;
        self.metrics.count(self.scope, "ioat.bytes", bytes);
        self.metrics
            .count(self.scope, "ioat.descriptors", descriptors);
        self.metrics
            .trace(now, self.scope, "ioat", "submit", bytes, channel as u64);
        let san = SimSanitizer::alloc(Kind::IoatDescriptor);
        SimSanitizer::submit(san);
        CopyHandle {
            channel,
            cookie,
            finish,
            san,
        }
    }

    /// Queue every segment of one chained batch at `now`, appending
    /// one handle per segment to `out` in segment order.
    ///
    /// Batching changes only the *submitting CPU's* cost (see
    /// [`Self::submit_cpu_cost_batched`]) — the hardware executes a
    /// chained ring exactly like individually submitted descriptors,
    /// so this is defined as, and must stay, observably identical to a
    /// loop over [`Self::submit`]: same per-channel FIFO completion
    /// times, same cookie sequence (the completion word still retires
    /// in order, so the driver's cheap is-done check and the PR-2
    /// quarantine/fallback paths are untouched), same counters and
    /// sanitizer states. The batch-semantics test pins that identity.
    #[track_caller]
    pub fn submit_batch(
        &mut self,
        params: &HwParams,
        now: Ps,
        segments: &[CopySegment],
        out: &mut Vec<CopyHandle>,
    ) {
        for seg in segments {
            out.push(self.submit(params, now, seg.channel, seg.bytes, seg.descriptors));
        }
    }

    /// Whether `handle`'s copy has completed by `now`. Because each
    /// channel completes in order, this also means every earlier cookie
    /// on the same channel is done — exactly the cheap-check property
    /// the paper relies on (§IV-A).
    pub fn is_complete(&self, now: Ps, handle: &CopyHandle) -> bool {
        handle.finish <= now
    }

    /// Time at which `channel` drains completely.
    pub fn channel_busy_until(&self, channel: usize) -> Ps {
        self.channels[channel].server.busy_until()
    }

    /// Latest completion time across all channels (engine fully idle).
    pub fn all_idle_at(&self) -> Ps {
        self.channels
            .iter()
            .map(|c| c.server.busy_until())
            .max()
            .unwrap_or(Ps::ZERO)
    }

    /// Total bytes ever queued (diagnostics).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Total descriptors ever queued (diagnostics).
    pub fn descriptors_submitted(&self) -> u64 {
        self.descriptors
    }

    /// Busy time integrated over one channel (utilization reporting).
    pub fn channel_busy_total(&self, channel: usize) -> Ps {
        self.channels[channel].server.busy_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> HwParams {
        HwParams::default()
    }

    #[test]
    fn single_descriptor_cost() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let h = e.submit(&params, Ps::ZERO, 0, 4096, 1);
        let expect = params.ioat_desc_overhead + params.ioat_raw_rate.time_for(4096);
        assert_eq!(h.finish, expect);
        assert!(!e.is_complete(Ps::ZERO, &h));
        assert!(e.is_complete(expect, &h));
    }

    #[test]
    fn sustained_4k_chunks_near_2_4_gib() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let total = 64u64 << 20;
        let chunk = 4096u64;
        let n = total / chunk;
        let mut last = Ps::ZERO;
        for _ in 0..n {
            last = e.submit(&params, Ps::ZERO, 0, chunk, 1).finish;
        }
        let gib = total as f64 / last.as_secs_f64() / (1u64 << 30) as f64;
        assert!((2.25..2.55).contains(&gib), "sustained {gib} GiB/s");
    }

    #[test]
    fn channels_are_independent() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let h0 = e.submit(&params, Ps::ZERO, 0, 1 << 20, 256);
        let h1 = e.submit(&params, Ps::ZERO, 1, 4096, 1);
        assert!(h1.finish < h0.finish, "channel 1 not blocked by channel 0");
        assert_eq!(e.channel_busy_until(2), Ps::ZERO);
        assert_eq!(e.all_idle_at(), h0.finish);
    }

    #[test]
    fn fifo_within_a_channel() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let h0 = e.submit(&params, Ps::ZERO, 0, 4096, 1);
        let h1 = e.submit(&params, Ps::ZERO, 0, 4096, 1);
        assert!(h1.cookie > h0.cookie);
        assert_eq!(h1.finish, h0.finish * 2);
        // In-order completion: later cookie never completes earlier.
        assert!(h1.finish >= h0.finish);
    }

    #[test]
    fn round_robin_cycles_all_channels() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let picks: Vec<usize> = (0..8).map(|_| e.pick_channel_rr()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_prefers_idle_channel() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        e.submit(&params, Ps::ZERO, 0, 1 << 20, 256);
        e.submit(&params, Ps::ZERO, 1, 1 << 20, 256);
        let ch = e.pick_channel_least_loaded();
        assert!(ch == 2 || ch == 3);
    }

    #[test]
    fn descriptor_helpers() {
        assert_eq!(IoatEngine::descriptors_for(4096, 4096), 1);
        assert_eq!(IoatEngine::descriptors_for(4097, 4096), 2);
        // A zero-length copy needs no descriptor.
        assert_eq!(IoatEngine::descriptors_for(0, 4096), 0);
        assert_eq!(IoatEngine::descriptors_for(1 << 20, 4096), 256);
        let params = p();
        assert_eq!(
            IoatEngine::submit_cpu_cost(&params, 3),
            params.ioat_submit_cpu * 3
        );
    }

    #[test]
    fn zero_length_copy_is_free_and_immediate() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        let h = e.submit(&params, Ps::us(7), 0, 0, 0);
        assert_eq!(h.finish, Ps::us(7), "completes immediately");
        assert!(e.is_complete(Ps::us(7), &h));
        assert_eq!(e.bytes_copied(), 0);
        assert_eq!(e.descriptors_submitted(), 0);
        assert_eq!(e.channel_busy_total(0), Ps::ZERO);
        assert_eq!(e.channel_busy_until(0), Ps::ZERO);
        // A later real copy on the same channel is not delayed.
        let h2 = e.submit(&params, Ps::us(7), 0, 4096, 1);
        let expect = Ps::us(7) + params.ioat_desc_overhead + params.ioat_raw_rate.time_for(4096);
        assert_eq!(h2.finish, expect);
        assert!(h2.cookie > h.cookie, "cookies stay monotone");
    }

    #[test]
    fn diagnostics_match_metrics_registry() {
        let params = p();
        let m = Metrics::new();
        let mut e = IoatEngine::new(&params);
        e.attach_metrics(m.clone(), 5);
        e.submit(&params, Ps::ZERO, 0, 4096, 1);
        e.submit(&params, Ps::ZERO, 1, 1 << 20, 256);
        e.submit(&params, Ps::ZERO, 0, 0, 0); // free, not counted
        assert_eq!(m.counter(5, "ioat.bytes"), e.bytes_copied());
        assert_eq!(m.counter(5, "ioat.descriptors"), e.descriptors_submitted());
        assert_eq!(m.counter(5, "ioat.zero_len_copies"), 1);
        let metered_busy = m.busy_total(5, "ioat.channel");
        let engine_busy =
            (0..e.num_channels()).fold(Ps::ZERO, |acc, ch| acc + e.channel_busy_total(ch));
        assert_eq!(metered_busy, engine_busy);
        assert!(m.busy_total(5, "ioat.mem_port") > Ps::ZERO);
    }

    #[test]
    fn diagnostics_accumulate() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        e.submit(&params, Ps::ZERO, 0, 4096, 1);
        e.submit(&params, Ps::ZERO, 1, 8192, 2);
        assert_eq!(e.bytes_copied(), 12288);
        assert_eq!(e.descriptors_submitted(), 3);
        assert!(e.channel_busy_total(0) > Ps::ZERO);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        IoatEngine::descriptors_for(100, 0);
    }

    #[test]
    fn transient_stall_pushes_completions_past_window() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        // Channel 0 stalls from 10 µs for 100 µs.
        e.inject_channel_stall(0, Ps::us(10), Some(Ps::us(100)));
        assert!(e.has_injected_faults());
        // A copy finishing before the stall is unaffected.
        let early = e.submit(&params, Ps::ZERO, 0, 4096, 1);
        assert!(early.finish < Ps::us(10));
        // A copy submitted mid-window is pushed past the stall end.
        let caught = e.submit(&params, Ps::us(50), 0, 4096, 1);
        assert!(caught.finish >= Ps::us(110), "finish {:?}", caught.finish);
        assert!(caught.finish < Ps::us(120));
        // Other channels never see the fault.
        let other = e.submit(&params, Ps::us(50), 1, 4096, 1);
        assert!(other.finish < Ps::us(60));
        // After the window the channel behaves normally again.
        let late = e.submit(&params, Ps::us(200), 0, 4096, 1);
        let expect = Ps::us(200) + params.ioat_desc_overhead + params.ioat_raw_rate.time_for(4096);
        assert_eq!(late.finish, expect);
    }

    #[test]
    fn permanent_failure_never_completes() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        e.inject_channel_stall(2, Ps::us(5), None);
        let h = e.submit(&params, Ps::us(6), 2, 1 << 20, 256);
        assert!(h.finish >= STALLED_FOREVER);
        assert!(!e.is_complete(Ps::secs(60), &h));
    }

    #[test]
    fn quarantine_blocks_then_reprobe_clears() {
        let params = p();
        let mut e = IoatEngine::new(&params);
        assert_eq!(e.probe_channel(0, Ps::ZERO), ChannelProbe::Healthy);
        assert!(e.quarantine(0, Ps::us(50)), "first quarantine is new");
        assert!(!e.quarantine(0, Ps::us(40)), "re-quarantine not counted");
        assert!(e.is_quarantined(0, Ps::us(10)));
        assert_eq!(e.probe_channel(0, Ps::us(10)), ChannelProbe::Quarantined);
        // Extension kept the *later* deadline.
        assert!(!e.quarantine(0, Ps::us(80)));
        assert_eq!(e.probe_channel(0, Ps::us(60)), ChannelProbe::Quarantined);
        // Cool-down over: the probe re-enables the channel.
        assert_eq!(e.probe_channel(0, Ps::us(80)), ChannelProbe::Reprobed);
        assert_eq!(e.probe_channel(0, Ps::us(80)), ChannelProbe::Healthy);
    }

    #[test]
    fn fault_metrics_are_counted() {
        let params = p();
        let m = Metrics::new();
        let mut e = IoatEngine::new(&params);
        e.attach_metrics(m.clone(), 3);
        e.inject_channel_stall(0, Ps::ZERO, None);
        e.submit(&params, Ps::us(1), 0, 4096, 1);
        e.quarantine(0, Ps::us(30));
        e.probe_channel(0, Ps::us(40));
        assert_eq!(m.counter(3, "ioat.stalled_copies"), 1);
        assert_eq!(m.counter(3, "ioat.quarantines"), 1);
        assert_eq!(m.counter(3, "ioat.reprobes"), 1);
    }

    #[test]
    fn batched_cost_defaults_to_per_descriptor_cost() {
        // With the default calibration (chain cost == submit cost) a
        // batch must charge exactly what individual submissions do,
        // with or without a doorbell — that is the bit-identity
        // guarantee behind `OmxConfig::ioat_batch` defaulting off.
        let params = p();
        for n in 0..16 {
            assert_eq!(
                IoatEngine::submit_cpu_cost_batched(&params, n, true),
                IoatEngine::submit_cpu_cost(&params, n)
            );
            assert_eq!(
                IoatEngine::submit_cpu_cost_batched(&params, n, false),
                IoatEngine::submit_cpu_cost(&params, n)
            );
        }
    }

    #[test]
    fn batched_cost_amortizes_the_doorbell() {
        let params = HwParams {
            ioat_desc_chain_cpu: Ps::ns(100),
            ..p()
        };
        assert_eq!(
            IoatEngine::submit_cpu_cost_batched(&params, 0, true),
            Ps::ZERO
        );
        // Doorbell: one full submit, the rest chained.
        assert_eq!(
            IoatEngine::submit_cpu_cost_batched(&params, 1, true),
            Ps::ns(350)
        );
        assert_eq!(
            IoatEngine::submit_cpu_cost_batched(&params, 4, true),
            Ps::ns(350) + Ps::ns(100) * 3
        );
        // No doorbell (GRO-train tail): pure chain appends.
        assert_eq!(
            IoatEngine::submit_cpu_cost_batched(&params, 4, false),
            Ps::ns(100) * 4
        );
    }

    #[test]
    fn submit_batch_is_identical_to_sequential_submits() {
        // The hardware executes a chained ring exactly like
        // individually submitted descriptors: same completion times,
        // same cookie order, same counters.
        let params = p();
        let segs = [
            CopySegment {
                channel: 0,
                bytes: 4096,
                descriptors: 1,
            },
            CopySegment {
                channel: 0,
                bytes: 8192,
                descriptors: 2,
            },
            CopySegment {
                channel: 1,
                bytes: 0,
                descriptors: 0,
            },
            CopySegment {
                channel: 2,
                bytes: 1 << 16,
                descriptors: 16,
            },
        ];
        let mut batched = IoatEngine::new(&params);
        let mut single = IoatEngine::new(&params);
        let mut out = Vec::new();
        batched.submit_batch(&params, Ps::us(3), &segs, &mut out);
        let expect: Vec<CopyHandle> = segs
            .iter()
            .map(|s| single.submit(&params, Ps::us(3), s.channel, s.bytes, s.descriptors))
            .collect();
        for h in out.iter().chain(expect.iter()) {
            SimSanitizer::complete(h.san);
            SimSanitizer::release(h.san);
        }
        assert_eq!(out, expect);
        assert_eq!(batched.bytes_copied(), single.bytes_copied());
        assert_eq!(
            batched.descriptors_submitted(),
            single.descriptors_submitted()
        );
        for ch in 0..params.ioat_channels {
            assert_eq!(
                batched.channel_busy_until(ch),
                single.channel_busy_until(ch)
            );
        }
        // Per-channel cookies stay monotone across the batch.
        assert_eq!(out[0].cookie, 0);
        assert_eq!(out[1].cookie, 1);
        assert_eq!(out[2].cookie, 0);
    }

    #[test]
    fn batch_preserves_polling_order_across_stalled_channel() {
        // A chained batch spanning a faulted channel must behave
        // exactly like sequential submissions: the completion word
        // still retires in cookie order on every channel, the stalled
        // segments report the never-completes horizon (which is what
        // routes the driver onto the PR-2 quarantine + memcpy
        // fallback), and healthy channels are untouched.
        let params = p();
        let mut batched = IoatEngine::new(&params);
        let mut single = IoatEngine::new(&params);
        for e in [&mut batched, &mut single] {
            e.inject_channel_stall(1, Ps::us(2), None);
        }
        let segs = [
            CopySegment {
                channel: 0,
                bytes: 4096,
                descriptors: 1,
            },
            CopySegment {
                channel: 1,
                bytes: 4096,
                descriptors: 1,
            },
            CopySegment {
                channel: 1,
                bytes: 8192,
                descriptors: 2,
            },
            CopySegment {
                channel: 0,
                bytes: 4096,
                descriptors: 1,
            },
        ];
        let mut out = Vec::new();
        batched.submit_batch(&params, Ps::us(5), &segs, &mut out);
        let expect: Vec<CopyHandle> = segs
            .iter()
            .map(|s| single.submit(&params, Ps::us(5), s.channel, s.bytes, s.descriptors))
            .collect();
        for h in out.iter().chain(expect.iter()) {
            SimSanitizer::complete(h.san);
            SimSanitizer::release(h.san);
        }
        assert_eq!(out, expect, "fault handling diverged under batching");
        // The stalled channel's chained descriptors never complete —
        // and still retire in cookie order (in-order completion word).
        assert!(out[1].finish >= STALLED_FOREVER);
        assert!(out[2].finish >= out[1].finish);
        assert!(out[2].cookie > out[1].cookie);
        // The healthy channel is oblivious to the *stall* (it still
        // shares the memory port with the stalled channel's bytes):
        // in-order and prompt, never pushed to the stall horizon.
        assert!(out[3].finish > out[0].finish);
        assert!(out[3].finish < Ps::ms(1));
        // Driver-side view: the cheap is-done check reads the same
        // answers it would have read with per-descriptor submission.
        for (b, s) in out.iter().zip(expect.iter()) {
            assert_eq!(
                batched.is_complete(Ps::us(8), b),
                single.is_complete(Ps::us(8), s)
            );
        }
    }

    #[test]
    fn batch_of_one_is_the_single_submit() {
        let params = p();
        let mut batched = IoatEngine::new(&params);
        let mut single = IoatEngine::new(&params);
        let seg = [CopySegment {
            channel: 3,
            bytes: 12_345,
            descriptors: 4,
        }];
        let mut out = Vec::new();
        batched.submit_batch(&params, Ps::us(1), &seg, &mut out);
        let h = single.submit(&params, Ps::us(1), 3, 12_345, 4);
        SimSanitizer::complete(out[0].san);
        SimSanitizer::release(out[0].san);
        SimSanitizer::complete(h.san);
        SimSanitizer::release(h.san);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], h);
    }
}
