//! Bottom-half (softirq) queues.
//!
//! The hard-IRQ handler does almost nothing; the heavy lifting runs
//! later in a *bottom half* on the interrupted core (paper §II-B). We
//! model one BH queue per core: the IRQ enqueues filled skbuffs and
//! marks the BH pending; when the BH runs it drains up to a NAPI-style
//! budget of skbuffs through the protocol callback, then (if work
//! remains) re-schedules itself.
//!
//! A `true` return from [`BottomHalfQueue::enqueue`] or
//! [`BottomHalfQueue::finish_run`] is a *promise* by the caller to
//! schedule a run. Dropping that promise is the classic lost-wakeup
//! bug: the queue stays `scheduled`, every later enqueue piggybacks on
//! a run that never comes, and the skbuffs sit forever. In debug
//! builds each promise mints a [`Kind::BhRun`] sanitizer token that
//! [`BottomHalfQueue::begin_run`] retires, so a dropped re-schedule
//! panics at teardown ("scheduled BH run not released") instead of
//! hanging silently.

use crate::skbuff::Skbuff;
use omx_sim::sanitize::{Kind, SimSanitizer, Token};
use omx_sim::Metrics;
use std::collections::VecDeque;

/// Per-core bottom-half state.
#[derive(Debug, Default)]
pub struct BottomHalfQueue {
    queue: VecDeque<Skbuff>,
    /// Whether a BH run is already scheduled (avoids duplicate runs).
    scheduled: bool,
    /// The live run promise: minted when `scheduled` flips on (or
    /// `finish_run` asks for a re-schedule), retired by `begin_run`.
    pending_run: Option<Token>,
    drained_total: u64,
    metrics: Metrics,
    scope: u32,
}

/// NAPI default weight: max skbuffs processed per BH invocation.
pub const NAPI_BUDGET: usize = 64;

impl BottomHalfQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report enqueue/drain counters and the backlog high watermark to
    /// `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        self.metrics = metrics;
        self.scope = scope;
    }

    /// IRQ path: enqueue a filled skbuff. Returns `true` when the
    /// caller must schedule a BH run (none was pending).
    #[track_caller]
    pub fn enqueue(&mut self, skb: Skbuff) -> bool {
        SimSanitizer::submit(skb.token());
        self.queue.push_back(skb);
        self.metrics.count(self.scope, "bh.enqueued", 1);
        self.metrics.gauge_max(
            self.scope,
            "bh.backlog_high_watermark",
            self.queue.len() as i64,
        );
        if self.scheduled {
            false
        } else {
            self.scheduled = true;
            self.promise_run();
            true
        }
    }

    /// The promised run started: retire the promise. Call once at the
    /// top of every scheduled BH run, before the first `pop_next`.
    #[track_caller]
    pub fn begin_run(&mut self) {
        debug_assert!(self.scheduled, "BH run began without being scheduled");
        if let Some(t) = self.pending_run.take() {
            SimSanitizer::complete(t);
            SimSanitizer::release(t);
        }
    }

    /// BH path: take the next skbuff to process, FIFO. The caller
    /// drains up to its budget one skbuff at a time (no per-run batch
    /// allocation) and then calls [`Self::finish_run`].
    pub fn pop_next(&mut self) -> Option<Skbuff> {
        let skb = self.queue.pop_front()?;
        self.drained_total += 1;
        self.metrics.count(self.scope, "bh.drained", 1);
        Some(skb)
    }

    /// Mark the current BH run finished. Returns `true` when skbuffs
    /// remain and the BH must be re-scheduled (budget exhausted while
    /// traffic kept arriving) — a fresh promise the caller must honor.
    #[track_caller]
    pub fn finish_run(&mut self) -> bool {
        debug_assert!(
            self.pending_run.is_none(),
            "finish_run before begin_run retired the run promise"
        );
        if self.queue.is_empty() {
            self.scheduled = false;
            false
        } else {
            // Stay scheduled; caller re-queues a run.
            self.promise_run();
            true
        }
    }

    /// Skbuffs waiting.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Whether a BH run is pending.
    pub fn is_scheduled(&self) -> bool {
        self.scheduled
    }

    /// Total skbuffs ever drained (diagnostics).
    pub fn drained_total(&self) -> u64 {
        self.drained_total
    }

    #[track_caller]
    fn promise_run(&mut self) {
        let t = SimSanitizer::alloc(Kind::BhRun);
        SimSanitizer::submit(t);
        self.pending_run = Some(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use omx_sim::Ps;

    fn skb(n: usize) -> Skbuff {
        Skbuff::new(0, Bytes::from(vec![0u8; n]), Ps::ZERO)
    }

    #[test]
    fn first_enqueue_schedules_once() {
        let mut bh = BottomHalfQueue::new();
        assert!(bh.enqueue(skb(10)));
        assert!(!bh.enqueue(skb(10)), "second enqueue piggybacks");
        assert_eq!(bh.backlog(), 2);
        assert!(bh.is_scheduled());
    }

    /// Pop up to `budget` skbuffs, as a BH run does.
    fn drain(bh: &mut BottomHalfQueue, budget: usize) -> Vec<Skbuff> {
        let mut out = Vec::new();
        while out.len() < budget {
            let Some(s) = bh.pop_next() else { break };
            out.push(s);
        }
        out
    }

    #[test]
    fn drain_respects_budget_and_order() {
        let mut bh = BottomHalfQueue::new();
        for i in 0..5 {
            bh.enqueue(skb(i + 1));
        }
        bh.begin_run();
        let batch = drain(&mut bh, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].len(), 1);
        assert_eq!(batch[2].len(), 3);
        assert_eq!(bh.backlog(), 2);
        // Work remains: finish_run asks for a re-schedule.
        assert!(bh.finish_run());
        bh.begin_run();
        let batch = drain(&mut bh, NAPI_BUDGET);
        assert_eq!(batch.len(), 2);
        assert!(!bh.finish_run());
        assert!(!bh.is_scheduled());
        assert_eq!(bh.drained_total(), 5);
    }

    #[test]
    fn enqueue_after_drain_schedules_again() {
        let mut bh = BottomHalfQueue::new();
        bh.enqueue(skb(1));
        bh.begin_run();
        bh.pop_next().expect("queued");
        bh.finish_run();
        assert!(bh.enqueue(skb(2)), "queue drained, new run needed");
    }

    #[test]
    fn empty_pop_is_none() {
        let mut bh = BottomHalfQueue::new();
        assert!(bh.pop_next().is_none());
        assert!(!bh.finish_run());
    }

    /// The satellite-3 lost-wakeup check: an honored promise leaves
    /// nothing outstanding; a dropped one trips `assert_quiesced`.
    #[cfg(debug_assertions)]
    #[test]
    fn honored_run_promise_quiesces() {
        SimSanitizer::clear();
        let mut bh = BottomHalfQueue::new();
        assert!(bh.enqueue(skb(4)));
        bh.begin_run();
        let s = bh.pop_next().expect("queued");
        SimSanitizer::complete(s.token());
        SimSanitizer::release(s.token());
        assert!(!bh.finish_run());
        SimSanitizer::assert_quiesced();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled BH run")]
    fn dropped_run_promise_is_a_lost_wakeup_panic() {
        SimSanitizer::clear();
        let mut bh = BottomHalfQueue::new();
        // The enqueue returns `true`: the caller now owes a BH run.
        assert!(bh.enqueue(skb(4)));
        // Model a buggy driver that drops the wakeup: it never calls
        // begin_run. Drain the skbuff out-of-band so the only leaked
        // token is the run promise itself.
        let s = bh.queue.pop_front().expect("queued");
        SimSanitizer::complete(s.token());
        SimSanitizer::release(s.token());
        SimSanitizer::assert_quiesced();
    }
}
