//! Generic Linux-Ethernet substrate model.
//!
//! Open-MX deliberately targets the *generic* Ethernet layer of the
//! Linux kernel — no RDMA NICs, no modified drivers — and inherits its
//! receive architecture: the driver keeps a ring of anonymous
//! `skbuff`s, the NIC fills the next one by DMA regardless of which
//! message the frame belongs to, an interrupt schedules a bottom half,
//! and the protocol's receive callback must then *copy* the payload to
//! its real destination. This crate models exactly those pieces:
//!
//! * [`frame`] — Ethernet frames with realistic wire framing overhead,
//! * [`skbuff`] — socket buffers carrying real payload bytes,
//! * [`nic`] — a NIC with an RX ring (overflow drops included) and
//!   interrupt dispatch,
//! * [`link`] — a unidirectional 10 GbE link as a FIFO server at the
//!   9953 Mbit/s effective data rate the paper quotes,
//! * [`bh`] — per-core bottom-half (softirq) queues with a NAPI-style
//!   budget,
//! * [`fault`] — per-link fault injection (Gilbert–Elliott bursty
//!   loss, FCS corruption, duplication, bounded reordering).
//!
//! Like `omx-hw`, everything is pure state + cost functions returning
//! times and actions; the `open-mx` cluster world does the scheduling.

pub mod bh;
pub mod fault;
pub mod frame;
pub mod link;
pub mod nic;
pub mod skbuff;

pub use bh::BottomHalfQueue;
pub use fault::{FrameDisposition, LinkFaultParams, LinkFaultState};
pub use frame::EthFrame;
pub use link::{Link, LinkParams};
pub use nic::{spread_queue_cores, Nic, NicParams, RxOutcome, RxWake};
pub use skbuff::Skbuff;
