//! The 10 GbE link.
//!
//! One [`Link`] is a *unidirectional* FIFO pipe (full duplex = two
//! links). A frame occupies the transmitter for `wire_bytes / rate`
//! and arrives `propagation + nic latency` later. The default rate is
//! the paper's effective 10 GbE data rate: 9953 Mbit/s = 1244 MB/s ≈
//! 1186 MiB/s — the "line rate" every throughput figure is measured
//! against.

use crate::frame::EthFrame;
use omx_sim::{FifoServer, Metrics, Ps, Rate};
use serde::{Deserialize, Serialize};

/// Link timing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    /// Serialization rate on the wire.
    pub rate: Rate,
    /// Cable + PHY propagation delay.
    pub propagation: Ps,
    /// Fixed per-frame latency inside the sending NIC (descriptor
    /// fetch, DMA from host memory, store-and-forward).
    pub tx_latency: Ps,
    /// Fixed per-frame latency inside the receiving NIC (DMA to the
    /// ring skbuff, descriptor writeback).
    pub rx_latency: Ps,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            rate: Rate::mbit_per_sec(9953),
            propagation: Ps::ns(300),
            tx_latency: Ps::ns(900),
            rx_latency: Ps::ns(900),
        }
    }
}

/// A unidirectional link with FIFO serialization.
#[derive(Debug, Clone)]
pub struct Link {
    params: LinkParams,
    server: FifoServer,
    frames: u64,
    payload_bytes: u64,
}

impl Link {
    /// An idle link.
    pub fn new(params: LinkParams) -> Link {
        Link {
            params,
            server: FifoServer::new(),
            frames: 0,
            payload_bytes: 0,
        }
    }

    /// The link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Report wire serialization busy time and frame/byte counters to
    /// `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        self.server.attach_meter(metrics, scope, "link.wire");
    }

    /// Total wire serialization time integrated over all frames.
    pub fn wire_busy_total(&self) -> Ps {
        self.server.busy_total()
    }

    /// Transmit `frame` handed to the NIC at `now`; returns the time
    /// the frame is fully received into the remote NIC (ready for ring
    /// DMA). Frames queue FIFO behind earlier transmissions.
    pub fn transmit(&mut self, now: Ps, frame: &EthFrame) -> Ps {
        self.transmit_with_overhead(now, frame, Ps::ZERO)
    }

    /// Like [`Self::transmit`] but with `extra` per-frame transmitter
    /// occupancy beyond wire serialization — models NIC firmware that
    /// spends time on each fragment (the MXoE baseline's ≈100 ns/frag,
    /// which caps its large-message rate at ≈1140 MiB/s).
    pub fn transmit_with_overhead(&mut self, now: Ps, frame: &EthFrame, extra: Ps) -> Ps {
        let serialize = self.params.rate.time_for(frame.wire_bytes()) + extra;
        let (_start, tx_done) = self.server.admit(now + self.params.tx_latency, serialize);
        self.frames += 1;
        self.payload_bytes += frame.payload_len();
        tx_done + self.params.propagation + self.params.rx_latency
    }

    /// When the transmitter drains.
    pub fn idle_at(&self) -> Ps {
        self.server.busy_until()
    }

    /// Wire serialization time of one frame at this link's rate. The
    /// fault injector uses multiples of this as the hold-back unit for
    /// reordered frames, so "reorder depth k" means "overtaken by up
    /// to k same-sized frames".
    pub fn serialization_time(&self, frame: &EthFrame) -> Ps {
        self.params.rate.time_for(frame.wire_bytes())
    }

    /// Frames sent so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames
    }

    /// Payload bytes sent so far.
    pub fn payload_bytes_sent(&self) -> u64 {
        self.payload_bytes
    }

    /// Achievable steady-state payload rate for `payload`-sized frames
    /// (analytic helper for tests and the MX baseline).
    pub fn payload_rate(&self, payload: u64) -> Rate {
        let f = EthFrame::new(0, 1, bytes::Bytes::from(vec![0u8; payload as usize]));
        let t = self.params.rate.time_for(f.wire_bytes());
        Rate::from_transfer(payload, t).expect("nonzero serialization time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(n: usize) -> EthFrame {
        EthFrame::new(0, 1, Bytes::from(vec![0u8; n]))
    }

    #[test]
    fn line_rate_matches_paper() {
        let l = Link::new(LinkParams::default());
        let mib = l.params().rate.as_mib_per_sec();
        assert!((mib - 1186.5).abs() < 1.0, "line rate {mib} MiB/s");
        // Page-sized frames reach ≈98 % of line rate.
        let pr = l.payload_rate(4096).as_mib_per_sec();
        assert!((1160.0..1180.0).contains(&pr), "payload rate {pr}");
    }

    #[test]
    fn single_frame_latency_components() {
        let p = LinkParams::default();
        let mut l = Link::new(p);
        let arrival = l.transmit(Ps::ZERO, &frame(4096));
        let serialize = p.rate.time_for(4096 + 38);
        assert_eq!(
            arrival,
            p.tx_latency + serialize + p.propagation + p.rx_latency
        );
    }

    #[test]
    fn frames_serialize_fifo() {
        let p = LinkParams::default();
        let mut l = Link::new(p);
        let a1 = l.transmit(Ps::ZERO, &frame(4096));
        let a2 = l.transmit(Ps::ZERO, &frame(4096));
        let serialize = p.rate.time_for(4096 + 38);
        assert_eq!(a2 - a1, serialize, "second frame waits for the first");
        assert_eq!(l.frames_sent(), 2);
        assert_eq!(l.payload_bytes_sent(), 8192);
    }

    #[test]
    fn back_to_back_stream_hits_wire_rate() {
        let p = LinkParams::default();
        let mut l = Link::new(p);
        let n = 1000u64;
        let mut last = Ps::ZERO;
        for _ in 0..n {
            last = l.transmit(Ps::ZERO, &frame(4096));
        }
        let rate = Rate::from_transfer(n * 4096, last).unwrap();
        let mib = rate.as_mib_per_sec();
        assert!((1140.0..1180.0).contains(&mib), "stream rate {mib} MiB/s");
    }

    #[test]
    fn gaps_do_not_accumulate_idle_time() {
        let p = LinkParams::default();
        let mut l = Link::new(p);
        l.transmit(Ps::ZERO, &frame(100));
        // A frame sent much later starts immediately.
        let a = l.transmit(Ps::ms(1), &frame(100));
        let serialize = p.rate.time_for(100 + 38);
        assert_eq!(
            a,
            Ps::ms(1) + p.tx_latency + serialize + p.propagation + p.rx_latency
        );
    }
}
