//! Link-level fault injection: a Gilbert–Elliott bursty-loss channel
//! plus independent corruption, duplication and bounded-reordering
//! hazards, evaluated per transmitted frame.
//!
//! The Gilbert–Elliott model is a two-state Markov chain: the link is
//! either in the *good* state (rare, independent drops at `loss_good`)
//! or the *bad* state (a fade or congestion episode dropping frames at
//! `loss_bad`). Transitions happen per frame with probabilities
//! `p_enter_bad` / `p_exit_bad`, so the stationary loss rate is
//!
//! ```text
//! pi_bad  = p_enter_bad / (p_enter_bad + p_exit_bad)
//! loss    = (1 - pi_bad) * loss_good + pi_bad * loss_bad
//! ```
//!
//! and the mean burst length is `1 / p_exit_bad` frames. Uniform loss
//! (the legacy `loss_one_in` knob) is the degenerate case where both
//! states drop at the same rate — see [`LinkFaultParams::uniform_loss`].
//!
//! Frames that survive the loss draw may still be corrupted (FCS
//! damage — the receiving NIC drops them before they consume a ring
//! slot), duplicated (delivered twice, as cut-through switches under
//! pause-frame storms occasionally do), or reordered (held back by a
//! bounded number of frame-serialization times).
//!
//! Each channel owns its own [`SplitMix64`] stream, handed over at
//! construction, so a fault pattern is a pure function of (seed,
//! link) — independent of how many frames *other* links carried and
//! of which partition of a split simulation evaluates the link. The
//! same plan + seed drops exactly the same frames every run, at every
//! partition count.

use omx_sim::SplitMix64;
use serde::{Deserialize, Serialize};

/// Per-link fault parameters (all probabilities per frame, in `[0,1]`).
///
/// The all-zero default is inert: [`LinkFaultParams::is_active`]
/// returns `false` and the cluster skips fault evaluation entirely for
/// such links, so an empty plan costs nothing and perturbs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFaultParams {
    /// Probability of transitioning good → bad before each frame.
    pub p_enter_bad: f64,
    /// Probability of transitioning bad → good before each frame.
    pub p_exit_bad: f64,
    /// Drop probability while in the good state.
    pub loss_good: f64,
    /// Drop probability while in the bad state.
    pub loss_bad: f64,
    /// Probability a delivered frame arrives with a damaged FCS (the
    /// NIC drops it without consuming an RX ring slot).
    pub corrupt_prob: f64,
    /// Probability a delivered frame is delivered twice.
    pub dup_prob: f64,
    /// Probability a delivered frame is held back (reordered).
    pub reorder_prob: f64,
    /// Maximum hold-back, in frame-serialization times (a reordered
    /// frame is delayed by 1..=depth extra serialization times, so
    /// later frames overtake it).
    pub reorder_depth: u32,
}

impl LinkFaultParams {
    /// Whether any hazard can ever fire. Inactive params draw no
    /// random numbers, keeping fault-free runs bit-identical to a
    /// build without this module.
    pub fn is_active(&self) -> bool {
        self.loss_good > 0.0
            || self.loss_bad > 0.0
            || self.p_enter_bad > 0.0
            || self.corrupt_prob > 0.0
            || self.dup_prob > 0.0
            || self.reorder_prob > 0.0
    }

    /// The legacy uniform-loss knob as a degenerate Gilbert–Elliott
    /// channel: both states drop at `1/one_in`, no state dynamics.
    pub fn uniform_loss(one_in: u64) -> LinkFaultParams {
        let p = if one_in == 0 {
            0.0
        } else {
            1.0 / one_in as f64
        };
        LinkFaultParams {
            loss_good: p,
            loss_bad: p,
            ..LinkFaultParams::default()
        }
    }

    /// Fold an independent uniform loss source into this channel
    /// (drop if either source drops: `1 - (1-a)(1-b)` per state).
    pub fn combined_with_uniform_loss(mut self, one_in: Option<u64>) -> LinkFaultParams {
        if let Some(one_in) = one_in {
            if one_in > 0 {
                let p = 1.0 / one_in as f64;
                self.loss_good = 1.0 - (1.0 - self.loss_good) * (1.0 - p);
                self.loss_bad = 1.0 - (1.0 - self.loss_bad) * (1.0 - p);
            }
        }
        self
    }

    /// Stationary (long-run) drop probability of the channel.
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        let pi_bad = if denom > 0.0 {
            self.p_enter_bad / denom
        } else {
            0.0
        };
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// What the fault channel decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameDisposition {
    /// Frame vanishes on the wire (never reaches the NIC).
    pub dropped: bool,
    /// Frame arrives with a damaged FCS (NIC drops and counts it).
    pub corrupted: bool,
    /// Frame is delivered a second time.
    pub duplicated: bool,
    /// Extra hold-back in frame-serialization times (0 = in order).
    pub reorder_extra: u32,
}

impl FrameDisposition {
    /// The disposition of a frame on a fault-free link.
    pub const CLEAN: FrameDisposition = FrameDisposition {
        dropped: false,
        corrupted: false,
        duplicated: false,
        reorder_extra: 0,
    };
}

/// Mutable per-link fault state: the parameters, the current
/// Gilbert–Elliott channel state, and the link's private draw stream.
#[derive(Debug, Clone)]
pub struct LinkFaultState {
    params: LinkFaultParams,
    in_bad: bool,
    rng: SplitMix64,
}

impl LinkFaultState {
    /// A channel starting in the good state, owning its draw stream.
    /// Derive `rng` purely from the run seed and the link's identity
    /// (e.g. `root.derive(key(src, dst))`) so the stream is the same
    /// no matter when the link is first touched or which partition
    /// hosts it.
    pub fn new(params: LinkFaultParams, rng: SplitMix64) -> LinkFaultState {
        LinkFaultState {
            params,
            in_bad: false,
            rng,
        }
    }

    /// The parameters this channel was built with.
    pub fn params(&self) -> &LinkFaultParams {
        &self.params
    }

    /// Whether the channel is currently in the bad (bursty) state.
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Evaluate the hazards for one frame. Draw order is fixed
    /// (transition, loss, corrupt, duplicate, reorder) so fault
    /// patterns are reproducible across runs with the same seed.
    pub fn next_frame(&mut self) -> FrameDisposition {
        let p = self.params;
        let rng = &mut self.rng;
        if self.in_bad {
            if rng.chance(p.p_exit_bad) {
                self.in_bad = false;
            }
        } else if rng.chance(p.p_enter_bad) {
            self.in_bad = true;
        }
        let loss = if self.in_bad { p.loss_bad } else { p.loss_good };
        if rng.chance(loss) {
            return FrameDisposition {
                dropped: true,
                ..FrameDisposition::CLEAN
            };
        }
        let corrupted = p.corrupt_prob > 0.0 && rng.chance(p.corrupt_prob);
        let duplicated = p.dup_prob > 0.0 && rng.chance(p.dup_prob);
        let reorder_extra =
            if p.reorder_prob > 0.0 && p.reorder_depth > 0 && rng.chance(p.reorder_prob) {
                1 + rng.next_below(p.reorder_depth as u64) as u32
            } else {
                0
            };
        FrameDisposition {
            dropped: false,
            corrupted,
            duplicated,
            reorder_extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_default_is_inactive() {
        let p = LinkFaultParams::default();
        assert!(!p.is_active());
        assert_eq!(p.stationary_loss(), 0.0);
    }

    #[test]
    fn uniform_loss_matches_one_in() {
        let p = LinkFaultParams::uniform_loss(50);
        assert!(p.is_active());
        assert!((p.stationary_loss() - 0.02).abs() < 1e-12);
        // Degenerate channel: both states drop identically.
        assert_eq!(p.loss_good, p.loss_bad);

        let mut st = LinkFaultState::new(p, SplitMix64::new(7));
        let n = 200_000;
        let drops = (0..n).filter(|_| st.next_frame().dropped).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.004, "observed loss {rate}");
    }

    #[test]
    fn certain_loss_drops_every_frame() {
        // loss_one_in = Some(1) must still drop everything through
        // the Gilbert–Elliott adapter.
        let p = LinkFaultParams::default().combined_with_uniform_loss(Some(1));
        let mut st = LinkFaultState::new(p, SplitMix64::new(1));
        for _ in 0..1000 {
            assert!(st.next_frame().dropped);
        }
    }

    #[test]
    fn bursty_loss_clusters_drops() {
        // Rare entry, sticky bad state with certain loss: drops come
        // in runs whose mean length ≈ 1/p_exit_bad.
        let p = LinkFaultParams {
            p_enter_bad: 0.002,
            p_exit_bad: 0.2,
            loss_bad: 1.0,
            ..LinkFaultParams::default()
        };
        let mut st = LinkFaultState::new(p, SplitMix64::new(3));
        let n = 400_000;
        let mut drops = 0u64;
        let mut bursts = 0u64;
        let mut prev_dropped = false;
        for _ in 0..n {
            let d = st.next_frame().dropped;
            if d {
                drops += 1;
                if !prev_dropped {
                    bursts += 1;
                }
            }
            prev_dropped = d;
        }
        let loss = drops as f64 / n as f64;
        assert!((loss - p.stationary_loss()).abs() < 0.003, "loss {loss}");
        let mean_burst = drops as f64 / bursts as f64;
        assert!(
            mean_burst > 2.0,
            "bursty channel must cluster drops, mean burst {mean_burst}"
        );
    }

    #[test]
    fn secondary_hazards_fire_at_configured_rates() {
        let p = LinkFaultParams {
            corrupt_prob: 0.1,
            dup_prob: 0.05,
            reorder_prob: 0.2,
            reorder_depth: 4,
            ..LinkFaultParams::default()
        };
        let mut st = LinkFaultState::new(p, SplitMix64::new(9));
        let n = 100_000;
        let (mut c, mut d, mut r) = (0u64, 0u64, 0u64);
        let mut max_extra = 0u32;
        for _ in 0..n {
            let disp = st.next_frame();
            assert!(!disp.dropped);
            c += disp.corrupted as u64;
            d += disp.duplicated as u64;
            r += (disp.reorder_extra > 0) as u64;
            max_extra = max_extra.max(disp.reorder_extra);
        }
        assert!((c as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((d as f64 / n as f64 - 0.05).abs() < 0.01);
        assert!((r as f64 / n as f64 - 0.2).abs() < 0.01);
        assert!(max_extra <= 4, "reorder bounded by depth");
        assert!(max_extra >= 1);
    }

    #[test]
    fn same_seed_same_disposition_stream() {
        let p = LinkFaultParams {
            p_enter_bad: 0.01,
            p_exit_bad: 0.3,
            loss_bad: 0.8,
            corrupt_prob: 0.02,
            dup_prob: 0.02,
            reorder_prob: 0.05,
            reorder_depth: 3,
            ..LinkFaultParams::default()
        };
        let run = |seed: u64| {
            let mut st = LinkFaultState::new(p, SplitMix64::new(seed));
            (0..5000).map(|_| st.next_frame()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn serializes_every_field() {
        let p = LinkFaultParams {
            p_enter_bad: 0.002,
            p_exit_bad: 0.2,
            loss_bad: 1.0,
            reorder_prob: 0.005,
            reorder_depth: 4,
            ..LinkFaultParams::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        for key in [
            "p_enter_bad",
            "p_exit_bad",
            "loss_good",
            "loss_bad",
            "corrupt_prob",
            "dup_prob",
            "reorder_prob",
            "reorder_depth",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
