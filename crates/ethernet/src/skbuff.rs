//! Socket buffers.
//!
//! An [`Skbuff`] is the kernel's unit of packet memory. On receive, the
//! NIC DMAs a frame into the next pre-allocated skbuff of the RX ring;
//! the skbuff then travels through the bottom half into the protocol
//! callback, which must copy the payload out before the buffer can be
//! recycled. The paper's whole problem statement lives in that copy —
//! and its I/OAT contribution is about when the skbuff can be *freed*
//! (pending asynchronous copies pin skbuffs; §III-B bounds them).
//!
//! Skbuffs here carry real bytes so that end-to-end payload integrity
//! is testable, plus the source-pinned-pages property the paper relies
//! on (skbuff memory is kernel memory, always DMA-able).

use bytes::Bytes;
use omx_sim::sanitize::{Kind, SimSanitizer, Token};
use omx_sim::Ps;

/// One socket buffer holding a received (or about-to-be-sent) frame
/// payload.
#[derive(Debug, Clone)]
pub struct Skbuff {
    /// Sending host id (filled from the frame on receive).
    pub src: u32,
    /// Payload bytes. Shared (`Bytes`) because the send path attaches
    /// user pages zero-copy and the receive path hands the same bytes
    /// from NIC to BH to callback without copying — the only *charged*
    /// copy is the one into the destination buffer, as in the paper.
    pub data: Bytes,
    /// Time the NIC finished DMA-ing this buffer (for latency stats).
    pub rx_time: Ps,
    /// Lifecycle sanitizer token: allocated here, submitted by the BH
    /// enqueue, completed+released when the protocol consumes the
    /// buffer (zero-sized in release builds).
    san: Token,
}

impl Skbuff {
    /// A received skbuff (the checked constructor: mints the lifecycle
    /// token with the caller as the allocation site).
    #[track_caller]
    pub fn new(src: u32, data: Bytes, rx_time: Ps) -> Skbuff {
        Skbuff {
            src,
            data,
            rx_time,
            san: SimSanitizer::alloc(Kind::Skbuff),
        }
    }

    /// The lifecycle token (for the consumer to complete/release).
    pub fn token(&self) -> Token {
        self.san
    }

    /// Payload length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty (zero-length control frame).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of distinct pages this skbuff's payload spans, assuming
    /// page-aligned allocation — this is the descriptor count an I/OAT
    /// offload of the whole payload needs ("one or two chunks per
    /// page", §IV-A; we model the aligned-one-chunk case and let the
    /// caller add slack for misalignment).
    pub fn pages(&self, page_size: u64) -> u64 {
        (self.data.len() as u64).div_ceil(page_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skbuff_reports_length_and_pages() {
        let s = Skbuff::new(0, Bytes::from(vec![1u8; 4096]), Ps::ZERO);
        assert_eq!(s.len(), 4096);
        assert!(!s.is_empty());
        assert_eq!(s.pages(4096), 1);
        let s = Skbuff::new(0, Bytes::from(vec![1u8; 4097]), Ps::ZERO);
        assert_eq!(s.pages(4096), 2);
        let s = Skbuff::new(0, Bytes::new(), Ps::ZERO);
        assert!(s.is_empty());
        assert_eq!(s.pages(4096), 1);
    }

    #[test]
    fn data_is_shared_not_copied() {
        let payload = Bytes::from(vec![9u8; 100]);
        let s = Skbuff::new(3, payload.clone(), Ps::ns(5));
        assert_eq!(s.data.as_ptr(), payload.as_ptr());
        assert_eq!(s.src, 3);
        assert_eq!(s.rx_time, Ps::ns(5));
    }
}
