//! The receive side of a commodity Ethernet NIC.
//!
//! The defining property (paper §II-B): the NIC consumes pre-allocated
//! ring skbuffs *in order* and cannot steer a frame to the buffer of
//! the message it belongs to — which is why every Ethernet-based
//! protocol pays a receive copy. We model the ring occupancy (overflow
//! = drop, exercised by the loss/retransmit tests), the DMA deposit
//! and interrupt moderation.

use crate::frame::EthFrame;
use crate::skbuff::Skbuff;
use omx_hw::CoreId;
use omx_sim::{Metrics, Ps};
use serde::{Deserialize, Serialize};

/// NIC configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NicParams {
    /// RX ring size in skbuffs (myri10ge default is 512).
    pub rx_ring_size: usize,
    /// Core the NIC's RX interrupt is routed to.
    pub irq_core: CoreId,
    /// Interrupt moderation window: a frame arriving within this window
    /// of the previous interrupt does not raise a new one (the pending
    /// BH will see it). Zero = interrupt per frame.
    pub irq_coalesce: Ps,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            rx_ring_size: 512,
            irq_core: CoreId(0),
            // myri10ge-style adaptive interrupt moderation: under a
            // fragment stream only one hard IRQ fires per window; an
            // idle link still delivers the first frame's interrupt
            // immediately, so small-message latency is unaffected.
            irq_coalesce: Ps::us(25),
        }
    }
}

/// What the host must do after a frame arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// Frame deposited; raise an interrupt on the given core.
    DeliveredWithIrq(CoreId),
    /// Frame deposited; an interrupt is already pending, no new one.
    DeliveredCoalesced,
    /// RX ring had no free skbuff: the frame is gone (upper layers
    /// recover via retransmission).
    DroppedRingFull,
    /// Hardware FCS check failed: the frame is discarded before it
    /// consumes a ring slot. Counted separately from ring drops so
    /// wire corruption and host overload are distinguishable.
    DroppedCorrupt,
}

/// NIC receive-side state.
#[derive(Debug, Clone)]
pub struct Nic {
    params: NicParams,
    /// Skbuffs currently filled and waiting for the bottom half.
    pending: usize,
    /// Time of the last raised interrupt.
    last_irq: Option<Ps>,
    frames_received: u64,
    frames_dropped: u64,
    frames_corrupt_dropped: u64,
    metrics: Metrics,
    scope: u32,
}

impl Nic {
    /// A NIC with an empty (fully replenished) ring.
    pub fn new(params: NicParams) -> Nic {
        assert!(params.rx_ring_size > 0, "RX ring cannot be empty");
        Nic {
            params,
            pending: 0,
            last_irq: None,
            frames_received: 0,
            frames_dropped: 0,
            frames_corrupt_dropped: 0,
            metrics: Metrics::disabled(),
            scope: 0,
        }
    }

    /// Report frame/drop/IRQ counters and the ring high watermark to
    /// `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        self.metrics = metrics;
        self.scope = scope;
    }

    /// The NIC parameters.
    pub fn params(&self) -> &NicParams {
        &self.params
    }

    /// A frame finished arriving at `now`. On success returns the
    /// filled skbuff and the required host action.
    pub fn receive(&mut self, now: Ps, frame: &EthFrame) -> (Option<Skbuff>, RxOutcome) {
        if frame.fcs_corrupt {
            self.frames_corrupt_dropped += 1;
            self.metrics.count(self.scope, "nic.corrupt_drops", 1);
            self.metrics.trace(
                now,
                self.scope,
                "nic",
                "corrupt_drop",
                frame.payload_len(),
                0,
            );
            return (None, RxOutcome::DroppedCorrupt);
        }
        if self.pending >= self.params.rx_ring_size {
            self.frames_dropped += 1;
            self.metrics.count(self.scope, "nic.ring_drops", 1);
            self.metrics
                .trace(now, self.scope, "nic", "ring_drop", frame.payload_len(), 0);
            return (None, RxOutcome::DroppedRingFull);
        }
        self.pending += 1;
        self.frames_received += 1;
        self.metrics.count(self.scope, "nic.frames", 1);
        self.metrics
            .count(self.scope, "nic.bytes", frame.payload_len());
        self.metrics
            .gauge_max(self.scope, "nic.ring_high_watermark", self.pending as i64);
        let skb = Skbuff::new(frame.src, frame.payload.clone(), now);
        let coalesced = matches!(self.last_irq, Some(t)
            if now.saturating_sub(t) < self.params.irq_coalesce);
        if coalesced {
            self.metrics.count(self.scope, "nic.irqs_coalesced", 1);
            (Some(skb), RxOutcome::DeliveredCoalesced)
        } else {
            self.last_irq = Some(now);
            self.metrics.count(self.scope, "nic.irqs", 1);
            (Some(skb), RxOutcome::DeliveredWithIrq(self.params.irq_core))
        }
    }

    /// The bottom half consumed `n` skbuffs and refilled the ring.
    pub fn replenish(&mut self, n: usize) {
        assert!(n <= self.pending, "replenishing more than pending");
        self.pending -= n;
    }

    /// Skbuffs filled and not yet consumed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Frames dropped on ring overflow so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames discarded by the hardware FCS check so far.
    pub fn frames_corrupt_dropped(&self) -> u64 {
        self.frames_corrupt_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(n: usize) -> EthFrame {
        EthFrame::new(0, 1, Bytes::from(vec![0xABu8; n]))
    }

    #[test]
    fn receive_fills_ring_and_raises_irq() {
        let mut nic = Nic::new(NicParams::default());
        let (skb, out) = nic.receive(Ps::us(1), &frame(100));
        let skb = skb.unwrap();
        assert_eq!(out, RxOutcome::DeliveredWithIrq(CoreId(0)));
        assert_eq!(skb.len(), 100);
        assert_eq!(skb.data[0], 0xAB);
        assert_eq!(skb.rx_time, Ps::us(1));
        assert_eq!(nic.pending(), 1);
        assert_eq!(nic.frames_received(), 1);
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 2,
            ..NicParams::default()
        });
        nic.receive(Ps::ZERO, &frame(10));
        nic.receive(Ps::ZERO, &frame(10));
        let (skb, out) = nic.receive(Ps::ZERO, &frame(10));
        assert!(skb.is_none());
        assert_eq!(out, RxOutcome::DroppedRingFull);
        assert_eq!(nic.frames_dropped(), 1);
        // Replenish frees slots again.
        nic.replenish(2);
        let (skb, _) = nic.receive(Ps::ZERO, &frame(10));
        assert!(skb.is_some());
    }

    #[test]
    fn irq_coalescing_window() {
        let mut nic = Nic::new(NicParams {
            irq_coalesce: Ps::us(10),
            ..NicParams::default()
        });
        let (_, o1) = nic.receive(Ps::ZERO, &frame(10));
        let (_, o2) = nic.receive(Ps::us(5), &frame(10));
        let (_, o3) = nic.receive(Ps::us(20), &frame(10));
        assert!(matches!(o1, RxOutcome::DeliveredWithIrq(_)));
        assert_eq!(o2, RxOutcome::DeliveredCoalesced);
        assert!(matches!(o3, RxOutcome::DeliveredWithIrq(_)));
    }

    #[test]
    fn corrupt_frames_dropped_before_ring() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 1,
            ..NicParams::default()
        });
        let mut f = frame(100);
        f.fcs_corrupt = true;
        let (skb, out) = nic.receive(Ps::ZERO, &f);
        assert!(skb.is_none());
        assert_eq!(out, RxOutcome::DroppedCorrupt);
        // FCS drops never consume a ring slot and are counted apart
        // from ring overflow.
        assert_eq!(nic.pending(), 0);
        assert_eq!(nic.frames_corrupt_dropped(), 1);
        assert_eq!(nic.frames_dropped(), 0);
        let (skb, _) = nic.receive(Ps::ZERO, &frame(10));
        assert!(skb.is_some());
    }

    #[test]
    #[should_panic(expected = "more than pending")]
    fn over_replenish_panics() {
        let mut nic = Nic::new(NicParams::default());
        nic.replenish(1);
    }
}
