//! The receive side of a commodity Ethernet NIC.
//!
//! The defining property (paper §II-B): the NIC consumes pre-allocated
//! ring skbuffs *in order* and cannot steer a frame to the buffer of
//! the message it belongs to — which is why every Ethernet-based
//! protocol pays a receive copy. We model the ring occupancy (overflow
//! = drop, exercised by the loss/retransmit tests), the DMA deposit
//! and interrupt moderation.

use crate::bh::{BottomHalfQueue, NAPI_BUDGET};
use crate::frame::EthFrame;
use crate::skbuff::Skbuff;
use omx_hw::CoreId;
use omx_sim::{Metrics, Ps};
use serde::{Deserialize, Serialize};

/// NIC configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NicParams {
    /// RX ring size in skbuffs (myri10ge default is 512).
    pub rx_ring_size: usize,
    /// Core the NIC's RX interrupt is routed to.
    pub irq_core: CoreId,
    /// Interrupt moderation window: a frame arriving within this window
    /// of the previous interrupt does not raise a new one (the pending
    /// BH will see it). Zero = interrupt per frame.
    pub irq_coalesce: Ps,
    /// Max skbuffs one bottom-half run drains (NAPI weight).
    pub bh_budget: usize,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            rx_ring_size: 512,
            irq_core: CoreId(0),
            // myri10ge-style adaptive interrupt moderation: under a
            // fragment stream only one hard IRQ fires per window; an
            // idle link still delivers the first frame's interrupt
            // immediately, so small-message latency is unaffected.
            irq_coalesce: Ps::us(25),
            bh_budget: NAPI_BUDGET,
        }
    }
}

/// What the host must do after a frame arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// Frame deposited on the core's bottom-half queue.
    Queued {
        /// Raise a hard interrupt on this core; `None` when the frame
        /// arrived inside the moderation window of the previous IRQ
        /// (the already-pending BH will see it).
        irq: Option<CoreId>,
        /// Whether the caller must schedule a BH run (none was
        /// pending on the queue).
        bh_wake: bool,
    },
    /// RX ring had no free skbuff: the frame is gone (upper layers
    /// recover via retransmission).
    DroppedRingFull,
    /// Hardware FCS check failed: the frame is discarded before it
    /// consumes a ring slot. Counted separately from ring drops so
    /// wire corruption and host overload are distinguishable.
    DroppedCorrupt,
}

/// NIC receive-side state.
#[derive(Debug, Clone)]
pub struct Nic {
    params: NicParams,
    /// Skbuffs currently filled and waiting for the bottom half.
    pending: usize,
    /// Time of the last raised interrupt.
    last_irq: Option<Ps>,
    frames_received: u64,
    frames_dropped: u64,
    frames_corrupt_dropped: u64,
    metrics: Metrics,
    scope: u32,
}

impl Nic {
    /// A NIC with an empty (fully replenished) ring.
    pub fn new(params: NicParams) -> Nic {
        assert!(params.rx_ring_size > 0, "RX ring cannot be empty");
        Nic {
            params,
            pending: 0,
            last_irq: None,
            frames_received: 0,
            frames_dropped: 0,
            frames_corrupt_dropped: 0,
            metrics: Metrics::disabled(),
            scope: 0,
        }
    }

    /// Report frame/drop/IRQ counters and the ring high watermark to
    /// `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        self.metrics = metrics;
        self.scope = scope;
    }

    /// The NIC parameters.
    pub fn params(&self) -> &NicParams {
        &self.params
    }

    /// A frame finished arriving at `now`: run the hardware checks,
    /// deposit it into the next ring skbuff and queue that skbuff on
    /// `bh`. Consumes the frame — the payload `Bytes` moves from wire
    /// to skbuff to callback without even refcount traffic, matching
    /// the paper's model where the only charged receive copy is the
    /// one out of the skbuff.
    #[track_caller]
    pub fn deliver(&mut self, now: Ps, frame: EthFrame, bh: &mut BottomHalfQueue) -> RxOutcome {
        if frame.fcs_corrupt {
            self.frames_corrupt_dropped += 1;
            self.metrics.count(self.scope, "nic.corrupt_drops", 1);
            self.metrics.trace(
                now,
                self.scope,
                "nic",
                "corrupt_drop",
                frame.payload_len(),
                0,
            );
            return RxOutcome::DroppedCorrupt;
        }
        if self.pending >= self.params.rx_ring_size {
            self.frames_dropped += 1;
            self.metrics.count(self.scope, "nic.ring_drops", 1);
            self.metrics
                .trace(now, self.scope, "nic", "ring_drop", frame.payload_len(), 0);
            return RxOutcome::DroppedRingFull;
        }
        self.pending += 1;
        self.frames_received += 1;
        self.metrics.count(self.scope, "nic.frames", 1);
        self.metrics
            .count(self.scope, "nic.bytes", frame.payload_len());
        self.metrics
            .gauge_max(self.scope, "nic.ring_high_watermark", self.pending as i64);
        let skb = Skbuff::new(frame.src, frame.payload, now);
        let coalesced = matches!(self.last_irq, Some(t)
            if now.saturating_sub(t) < self.params.irq_coalesce);
        let irq = if coalesced {
            self.metrics.count(self.scope, "nic.irqs_coalesced", 1);
            None
        } else {
            self.last_irq = Some(now);
            self.metrics.count(self.scope, "nic.irqs", 1);
            Some(self.params.irq_core)
        };
        let bh_wake = bh.enqueue(skb);
        RxOutcome::Queued { irq, bh_wake }
    }

    /// The bottom half consumed `n` skbuffs and refilled the ring.
    pub fn replenish(&mut self, n: usize) {
        assert!(n <= self.pending, "replenishing more than pending");
        self.pending -= n;
    }

    /// Skbuffs filled and not yet consumed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Frames dropped on ring overflow so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames discarded by the hardware FCS check so far.
    pub fn frames_corrupt_dropped(&self) -> u64 {
        self.frames_corrupt_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(n: usize) -> EthFrame {
        EthFrame::new(0, 1, Bytes::from(vec![0xABu8; n]))
    }

    #[test]
    fn deliver_fills_ring_queues_bh_and_raises_irq() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let out = nic.deliver(Ps::us(1), frame(100), &mut bh);
        assert_eq!(
            out,
            RxOutcome::Queued {
                irq: Some(CoreId(0)),
                bh_wake: true
            }
        );
        let skb = bh.pop_next().expect("queued");
        assert_eq!(skb.len(), 100);
        assert_eq!(skb.data[0], 0xAB);
        assert_eq!(skb.rx_time, Ps::us(1));
        assert_eq!(nic.pending(), 1);
        assert_eq!(nic.frames_received(), 1);
    }

    #[test]
    fn payload_moves_from_frame_to_skbuff_without_copy() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let f = frame(64);
        let wire_ptr = f.payload.as_ptr();
        nic.deliver(Ps::ZERO, f, &mut bh);
        let skb = bh.pop_next().expect("queued");
        assert_eq!(skb.data.as_ptr(), wire_ptr, "payload bytes were copied");
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 2,
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        nic.deliver(Ps::ZERO, frame(10), &mut bh);
        nic.deliver(Ps::ZERO, frame(10), &mut bh);
        let out = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        assert_eq!(out, RxOutcome::DroppedRingFull);
        assert_eq!(nic.frames_dropped(), 1);
        assert_eq!(bh.backlog(), 2, "dropped frame must not reach the BH");
        // Replenish frees slots again.
        nic.replenish(2);
        let out = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        assert!(matches!(out, RxOutcome::Queued { .. }));
    }

    #[test]
    fn irq_coalescing_window() {
        let mut nic = Nic::new(NicParams {
            irq_coalesce: Ps::us(10),
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        let o1 = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        let o2 = nic.deliver(Ps::us(5), frame(10), &mut bh);
        let o3 = nic.deliver(Ps::us(20), frame(10), &mut bh);
        assert!(matches!(o1, RxOutcome::Queued { irq: Some(_), .. }));
        assert!(matches!(o2, RxOutcome::Queued { irq: None, .. }));
        assert!(matches!(o3, RxOutcome::Queued { irq: Some(_), .. }));
    }

    #[test]
    fn bh_wake_only_when_no_run_pending() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let o1 = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        let o2 = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        assert!(matches!(o1, RxOutcome::Queued { bh_wake: true, .. }));
        assert!(
            matches!(o2, RxOutcome::Queued { bh_wake: false, .. }),
            "second frame piggybacks on the pending BH run"
        );
    }

    #[test]
    fn corrupt_frames_dropped_before_ring() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 1,
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        let mut f = frame(100);
        f.fcs_corrupt = true;
        let out = nic.deliver(Ps::ZERO, f, &mut bh);
        assert_eq!(out, RxOutcome::DroppedCorrupt);
        // FCS drops never consume a ring slot and are counted apart
        // from ring overflow.
        assert_eq!(nic.pending(), 0);
        assert_eq!(nic.frames_corrupt_dropped(), 1);
        assert_eq!(nic.frames_dropped(), 0);
        assert_eq!(bh.backlog(), 0);
        let out = nic.deliver(Ps::ZERO, frame(10), &mut bh);
        assert!(matches!(out, RxOutcome::Queued { .. }));
    }

    #[test]
    #[should_panic(expected = "more than pending")]
    fn over_replenish_panics() {
        let mut nic = Nic::new(NicParams::default());
        nic.replenish(1);
    }
}
