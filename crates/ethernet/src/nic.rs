//! The receive side of a commodity Ethernet NIC.
//!
//! The defining property (paper §II-B): the NIC consumes pre-allocated
//! ring skbuffs *in order* and cannot steer a frame to the buffer of
//! the message it belongs to — which is why every Ethernet-based
//! protocol pays a receive copy. We model the ring occupancy (overflow
//! = drop, exercised by the loss/retransmit tests), the DMA deposit
//! and interrupt moderation.
//!
//! # Multi-queue receive (RSS)
//!
//! Modern NICs scale receive processing across cores by hashing each
//! frame's flow tuple onto one of several RX queues, each with its own
//! ring, its own interrupt affinity and its own bottom half. We model
//! that here: [`NicParams::num_queues`] rings, a deterministic RSS
//! hash over `(src, dst, channel)` ([`Nic::rss_queue`] — the channel
//! is the endpoint pair in the OMX header, so all fragments of one
//! message stay on one queue and per-flow FIFO order is preserved),
//! per-queue interrupt moderation, and a queue→core binding chosen by
//! [`spread_queue_cores`] to land consecutive queues on distinct L2
//! domains. `num_queues = 1` (the default) is exactly the 2008
//! single-ring NIC the paper measured.

use crate::bh::{BottomHalfQueue, NAPI_BUDGET};
use crate::frame::EthFrame;
use crate::skbuff::Skbuff;
use omx_hw::{CoreId, Topology};
use omx_sim::{Metrics, Ps};
use serde::{Deserialize, Serialize};

/// Hard cap on modeled RX queues: per-queue metric names must be
/// `&'static str`, so they are spelled out for this range (and no
/// modeled host has more than 8 cores anyway).
pub const MAX_QUEUES: usize = 8;

/// NIC configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NicParams {
    /// RX ring size in skbuffs **per queue** (myri10ge default is 512).
    pub rx_ring_size: usize,
    /// Core the RX interrupt of queue 0 is routed to; further queues
    /// spread over the remaining cores (see [`spread_queue_cores`]).
    pub irq_core: CoreId,
    /// Interrupt moderation window, kept per queue: a frame arriving
    /// within this window of the previous interrupt on the same queue
    /// does not raise a new one (the pending BH will see it). Zero =
    /// interrupt per frame.
    pub irq_coalesce: Ps,
    /// Max skbuffs one bottom-half run drains (NAPI weight).
    pub bh_budget: usize,
    /// RX queues (1 = the paper's single-ring NIC, up to
    /// [`MAX_QUEUES`]). Each queue owns a ring, an IRQ moderation
    /// window and a per-core bottom half.
    pub num_queues: usize,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            rx_ring_size: 512,
            irq_core: CoreId(0),
            // myri10ge-style adaptive interrupt moderation: under a
            // fragment stream only one hard IRQ fires per window; an
            // idle link still delivers the first frame's interrupt
            // immediately, so small-message latency is unaffected.
            irq_coalesce: Ps::us(25),
            bh_budget: NAPI_BUDGET,
            num_queues: 1,
        }
    }
}

/// What the host must do after [`Nic::deliver`] queued a frame.
///
/// Exactly one variant is returned per accepted frame; every variant
/// carries an obligation, which is why this is an enum and not the old
/// `(Option<CoreId>, bool)` pair — in particular [`RxWake::TimerKick`]
/// (moderation window suppressed the IRQ *and* no BH run is pending)
/// used to be an easy-to-drop flag combination whose loss stranded the
/// skbuff until the next frame arrived. If the link went idle, that
/// next frame never came.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxWake {
    /// Raise a hard interrupt on this core and schedule a BH run.
    Irq(CoreId),
    /// Raise a hard interrupt on this core; a BH run is already
    /// pending, so the interrupt only charges handler time.
    IrqPending(CoreId),
    /// Moderation window suppressed the interrupt and a BH run is
    /// already pending: nothing to do, the run will see the skbuff.
    Pending,
    /// Moderation window suppressed the interrupt but **no BH run is
    /// pending**: the caller must arm the deferred moderation-timer
    /// kick and run the BH on this core, or the skbuff sits unserviced
    /// forever once the link goes idle.
    TimerKick(CoreId),
}

/// What the host must do after a frame arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// Frame deposited on a queue's bottom half.
    Queued {
        /// RX queue the RSS hash steered the frame to.
        queue: usize,
        /// The wakeup obligation (see [`RxWake`]).
        wake: RxWake,
    },
    /// RX ring had no free skbuff: the frame is gone (upper layers
    /// recover via retransmission).
    DroppedRingFull,
    /// Hardware FCS check failed: the frame is discarded before it
    /// consumes a ring slot. Counted separately from ring drops so
    /// wire corruption and host overload are distinguishable.
    DroppedCorrupt,
}

/// Receive state of one RX queue: ring occupancy, moderation window,
/// interrupt affinity.
#[derive(Debug)]
struct QueueState {
    /// Skbuffs currently filled and waiting for the bottom half.
    pending: usize,
    /// Highest `pending` ever reached — the occupancy signal the
    /// credit controller and the per-queue watermark gauges read.
    /// Tracked on the NIC itself (not only in the metrics registry)
    /// so the signal survives `Metrics::disabled()` runs.
    hwm: usize,
    /// Time of the last raised interrupt on this queue.
    last_irq: Option<Ps>,
    /// Core this queue's IRQ and bottom half run on.
    core: CoreId,
}

/// NIC receive-side state.
///
/// Deliberately not `Clone`: a cloned NIC would silently fork the
/// ring occupancy and drop counters while still publishing into the
/// same metrics scope, double-counting every frame.
#[derive(Debug)]
pub struct Nic {
    params: NicParams,
    queues: Vec<QueueState>,
    frames_received: u64,
    frames_dropped: u64,
    frames_corrupt_dropped: u64,
    metrics: Metrics,
    scope: u32,
}

// Per-queue metric names, indexed by queue id (the registry requires
// `&'static str` keys, so the tables are spelled out for MAX_QUEUES).
const Q_FRAMES: [&str; MAX_QUEUES] = [
    "nic.q0.frames",
    "nic.q1.frames",
    "nic.q2.frames",
    "nic.q3.frames",
    "nic.q4.frames",
    "nic.q5.frames",
    "nic.q6.frames",
    "nic.q7.frames",
];
const Q_IRQS: [&str; MAX_QUEUES] = [
    "nic.q0.irqs",
    "nic.q1.irqs",
    "nic.q2.irqs",
    "nic.q3.irqs",
    "nic.q4.irqs",
    "nic.q5.irqs",
    "nic.q6.irqs",
    "nic.q7.irqs",
];
const Q_IRQS_COALESCED: [&str; MAX_QUEUES] = [
    "nic.q0.irqs_coalesced",
    "nic.q1.irqs_coalesced",
    "nic.q2.irqs_coalesced",
    "nic.q3.irqs_coalesced",
    "nic.q4.irqs_coalesced",
    "nic.q5.irqs_coalesced",
    "nic.q6.irqs_coalesced",
    "nic.q7.irqs_coalesced",
];
const Q_RING_DROPS: [&str; MAX_QUEUES] = [
    "nic.q0.ring_drops",
    "nic.q1.ring_drops",
    "nic.q2.ring_drops",
    "nic.q3.ring_drops",
    "nic.q4.ring_drops",
    "nic.q5.ring_drops",
    "nic.q6.ring_drops",
    "nic.q7.ring_drops",
];
const Q_RING_HWM: [&str; MAX_QUEUES] = [
    "nic.q0.ring_high_watermark",
    "nic.q1.ring_high_watermark",
    "nic.q2.ring_high_watermark",
    "nic.q3.ring_high_watermark",
    "nic.q4.ring_high_watermark",
    "nic.q5.ring_high_watermark",
    "nic.q6.ring_high_watermark",
    "nic.q7.ring_high_watermark",
];

/// Per-queue metric name, total over any queue id (queue counts are
/// clamped to `MAX_QUEUES` at construction, so the fallback never
/// publishes in practice).
fn qname(names: &'static [&'static str; MAX_QUEUES], queue: usize) -> &'static str {
    names.get(queue).copied().unwrap_or("nic.q_oob")
}

/// The queue→core binding the cluster uses: queue 0 keeps the
/// configured `irq_core` (so `num_queues = 1` is exactly the old
/// single-ring NIC), and further queues walk the remaining cores one
/// subchip at a time — consecutive queues land on distinct L2 domains
/// before any subchip carries two BHs. On the Clovertown default with
/// `irq_core = 0` the order is `[0, 2, 4, 6, 1, 3, 5, 7]`.
pub fn spread_queue_cores(params: &NicParams, topo: &Topology) -> Vec<CoreId> {
    assert!(
        params.num_queues as u32 <= topo.num_cores(),
        "num_queues {} exceeds the host's {} cores",
        params.num_queues,
        topo.num_cores()
    );
    let mut order = vec![params.irq_core];
    let mut rest: Vec<(usize, u32, CoreId)> = topo
        .cores()
        .filter(|&c| c != params.irq_core)
        .map(|c| {
            let sub = topo.subchip_of(c);
            // Rank of the core within its subchip: the sort key walks
            // "first core of every subchip, then second core, ...".
            let rank = topo
                .cores()
                .filter(|&o| topo.subchip_of(o) == sub && o.0 < c.0)
                .count();
            (rank, sub.0, c)
        })
        .collect();
    rest.sort();
    order.extend(rest.into_iter().map(|(_, _, c)| c));
    order.truncate(params.num_queues);
    order
}

impl Nic {
    /// A NIC with empty (fully replenished) rings. Every queue starts
    /// bound to `irq_core`; multi-queue embedders pick a spread with
    /// [`Nic::bind_queue_cores`].
    pub fn new(params: NicParams) -> Nic {
        assert!(params.rx_ring_size > 0, "RX ring cannot be empty");
        assert!(
            (1..=MAX_QUEUES).contains(&params.num_queues),
            "num_queues must be in 1..={MAX_QUEUES}"
        );
        Nic {
            queues: (0..params.num_queues)
                .map(|_| QueueState {
                    pending: 0,
                    hwm: 0,
                    last_irq: None,
                    core: params.irq_core,
                })
                .collect(),
            params,
            frames_received: 0,
            frames_dropped: 0,
            frames_corrupt_dropped: 0,
            metrics: Metrics::disabled(),
            scope: 0,
        }
    }

    /// Route each queue's IRQ (and therefore its BH) to a core. One
    /// core per queue: two queues sharing a BH would fork the ring
    /// accounting.
    pub fn bind_queue_cores(&mut self, cores: &[CoreId]) {
        assert_eq!(
            cores.len(),
            self.queues.len(),
            "need exactly one core per RX queue"
        );
        for (i, &c) in cores.iter().enumerate() {
            assert!(
                !cores[..i].contains(&c),
                "core {c:?} bound to two RX queues"
            );
            self.queues[i].core = c;
        }
    }

    /// Report frame/drop/IRQ counters and the ring high watermark to
    /// `metrics` under `scope`.
    pub fn attach_metrics(&mut self, metrics: Metrics, scope: u32) {
        self.metrics = metrics;
        self.scope = scope;
    }

    /// The NIC parameters.
    pub fn params(&self) -> &NicParams {
        &self.params
    }

    /// Number of RX queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Core the given queue's IRQ and bottom half run on.
    pub fn queue_core(&self, queue: usize) -> CoreId {
        self.q(queue).core
    }

    /// Per-queue state. The single bounds-checked gateway to
    /// `self.queues`: every caller's queue id comes from
    /// [`Nic::rss_queue`] (always in range) or is asserted at the
    /// `deliver`/`replenish` boundary.
    fn q(&self, queue: usize) -> &QueueState {
        // omx-lint: allow(fast-path-panic) queue ids come from rss_queue or are asserted at the deliver boundary; exercised at every RSS width [test: tests/incast_soak.rs::incast_with_credits_survives_every_plan]
        &self.queues[queue]
    }

    /// Mutable twin of [`Nic::q`].
    fn q_mut(&mut self, queue: usize) -> &mut QueueState {
        // omx-lint: allow(fast-path-panic) queue ids come from rss_queue or are asserted at the deliver boundary; exercised at every RSS width [test: tests/incast_soak.rs::incast_with_credits_survives_every_plan]
        &mut self.queues[queue]
    }

    /// RSS: hash the frame's `(src, dst, channel)` tuple onto a queue.
    /// The channel is the endpoint pair in the OMX payload header
    /// (bytes 1 and 2 behind the kind byte), so every fragment of one
    /// message — and more broadly one endpoint-pair flow — lands on
    /// one queue, preserving per-flow FIFO order. The hash is a fixed
    /// SplitMix64-style finalizer: deterministic across runs and
    /// seeds, like a real NIC's Toeplitz hash with a fixed key.
    pub fn rss_queue(&self, frame: &EthFrame) -> usize {
        if self.queues.len() == 1 {
            return 0;
        }
        let channel = if frame.payload.len() >= 3 {
            ((frame.payload[1] as u64) << 8) | frame.payload[2] as u64
        } else {
            0
        };
        // Component multipliers decorrelate the low-entropy inputs
        // (node ids and endpoints are tiny integers, often linearly
        // related) before the finalizer — the same role as a
        // well-chosen Toeplitz key.
        let mut x = (frame.src as u64).wrapping_mul(0x9E37_79B9_7F4A_7E99)
            ^ (frame.dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ channel.wrapping_mul(0x1656_67B1_9E37_79F9);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.queues.len() as u64) as usize
    }

    /// A frame finished arriving at `now` on `queue` (from
    /// [`Nic::rss_queue`]): run the hardware checks, deposit it into
    /// the queue's next ring skbuff and enqueue that skbuff on `bh` —
    /// which must be the BH of [`Nic::queue_core`]`(queue)`. Consumes
    /// the frame — the payload `Bytes` moves from wire to skbuff to
    /// callback without even refcount traffic, matching the paper's
    /// model where the only charged receive copy is the one out of the
    /// skbuff.
    #[track_caller]
    pub fn deliver(
        &mut self,
        now: Ps,
        queue: usize,
        frame: EthFrame,
        bh: &mut BottomHalfQueue,
    ) -> RxOutcome {
        assert!(queue < self.queues.len(), "RX queue {queue} out of range");
        if frame.fcs_corrupt {
            self.frames_corrupt_dropped += 1;
            self.metrics.count(self.scope, "nic.corrupt_drops", 1);
            self.metrics.trace(
                now,
                self.scope,
                "nic",
                "corrupt_drop",
                frame.payload_len(),
                0,
            );
            return RxOutcome::DroppedCorrupt;
        }
        if self.q(queue).pending >= self.params.rx_ring_size {
            self.frames_dropped += 1;
            self.metrics.count(self.scope, "nic.ring_drops", 1);
            self.metrics
                .count(self.scope, qname(&Q_RING_DROPS, queue), 1);
            self.metrics
                .trace(now, self.scope, "nic", "ring_drop", frame.payload_len(), 0);
            return RxOutcome::DroppedRingFull;
        }
        self.q_mut(queue).pending += 1;
        let pending = self.q(queue).pending;
        if pending > self.q(queue).hwm {
            self.q_mut(queue).hwm = pending;
        }
        self.frames_received += 1;
        self.metrics.count(self.scope, "nic.frames", 1);
        self.metrics.count(self.scope, qname(&Q_FRAMES, queue), 1);
        self.metrics
            .count(self.scope, "nic.bytes", frame.payload_len());
        self.metrics
            .gauge_max(self.scope, "nic.ring_high_watermark", pending as i64);
        self.metrics
            .gauge_max(self.scope, qname(&Q_RING_HWM, queue), pending as i64);
        let skb = Skbuff::new(frame.src, frame.payload, now);
        let core = self.q(queue).core;
        let coalesced = matches!(self.q(queue).last_irq, Some(t)
            if now.saturating_sub(t) < self.params.irq_coalesce);
        if coalesced {
            self.metrics.count(self.scope, "nic.irqs_coalesced", 1);
            self.metrics
                .count(self.scope, qname(&Q_IRQS_COALESCED, queue), 1);
        } else {
            self.q_mut(queue).last_irq = Some(now);
            self.metrics.count(self.scope, "nic.irqs", 1);
            self.metrics.count(self.scope, qname(&Q_IRQS, queue), 1);
        }
        let bh_wake = bh.enqueue(skb);
        let wake = match (coalesced, bh_wake) {
            (false, true) => RxWake::Irq(core),
            (false, false) => RxWake::IrqPending(core),
            (true, false) => RxWake::Pending,
            (true, true) => RxWake::TimerKick(core),
        };
        RxOutcome::Queued { queue, wake }
    }

    /// The bottom half consumed `n` skbuffs from `queue` and refilled
    /// that ring.
    pub fn replenish(&mut self, queue: usize, n: usize) {
        assert!(queue < self.queues.len(), "RX queue {queue} out of range");
        assert!(n <= self.q(queue).pending, "replenishing more than pending");
        self.q_mut(queue).pending -= n;
    }

    /// Skbuffs filled and not yet consumed, across all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.pending).sum()
    }

    /// Skbuffs filled and not yet consumed on one queue.
    pub fn pending_on(&self, queue: usize) -> usize {
        self.queues[queue].pending
    }

    /// Highest ring occupancy `queue` ever reached (matches the
    /// `nic.q<i>.ring_high_watermark` gauge, but readable even with
    /// metrics disabled).
    pub fn ring_high_watermark(&self, queue: usize) -> usize {
        self.queues[queue].hwm
    }

    /// Frames accepted so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Frames dropped on ring overflow so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Frames discarded by the hardware FCS check so far.
    pub fn frames_corrupt_dropped(&self) -> u64 {
        self.frames_corrupt_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(n: usize) -> EthFrame {
        EthFrame::new(0, 1, Bytes::from(vec![0xABu8; n]))
    }

    /// A frame whose OMX header carries the given endpoint pair (the
    /// RSS channel bytes).
    fn flow_frame(src: u32, dst: u32, src_ep: u8, dst_ep: u8) -> EthFrame {
        EthFrame::new(src, dst, Bytes::from(vec![2u8, src_ep, dst_ep, 0, 0]))
    }

    #[test]
    fn deliver_fills_ring_queues_bh_and_raises_irq() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let out = nic.deliver(Ps::us(1), 0, frame(100), &mut bh);
        assert_eq!(
            out,
            RxOutcome::Queued {
                queue: 0,
                wake: RxWake::Irq(CoreId(0)),
            }
        );
        let skb = bh.pop_next().expect("queued");
        assert_eq!(skb.len(), 100);
        assert_eq!(skb.data[0], 0xAB);
        assert_eq!(skb.rx_time, Ps::us(1));
        assert_eq!(nic.pending(), 1);
        assert_eq!(nic.frames_received(), 1);
    }

    #[test]
    fn payload_moves_from_frame_to_skbuff_without_copy() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let f = frame(64);
        let wire_ptr = f.payload.as_ptr();
        nic.deliver(Ps::ZERO, 0, f, &mut bh);
        let skb = bh.pop_next().expect("queued");
        assert_eq!(skb.data.as_ptr(), wire_ptr, "payload bytes were copied");
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 2,
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        let out = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        assert_eq!(out, RxOutcome::DroppedRingFull);
        assert_eq!(nic.frames_dropped(), 1);
        assert_eq!(bh.backlog(), 2, "dropped frame must not reach the BH");
        // Replenish frees slots again.
        nic.replenish(0, 2);
        let out = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        assert!(matches!(out, RxOutcome::Queued { .. }));
    }

    #[test]
    fn irq_coalescing_window() {
        let mut nic = Nic::new(NicParams {
            irq_coalesce: Ps::us(10),
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        let o1 = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        let o2 = nic.deliver(Ps::us(5), 0, frame(10), &mut bh);
        let o3 = nic.deliver(Ps::us(20), 0, frame(10), &mut bh);
        assert!(matches!(
            o1,
            RxOutcome::Queued {
                wake: RxWake::Irq(_),
                ..
            }
        ));
        assert!(matches!(
            o2,
            RxOutcome::Queued {
                wake: RxWake::Pending,
                ..
            }
        ));
        assert!(matches!(
            o3,
            RxOutcome::Queued {
                wake: RxWake::IrqPending(_),
                ..
            }
        ));
    }

    #[test]
    fn zero_coalesce_interrupts_per_frame() {
        // irq_coalesce = 0 is the documented interrupt-per-frame
        // boundary: `0 < 0` never holds, so back-to-back frames at the
        // same instant each raise a hard IRQ.
        let mut nic = Nic::new(NicParams {
            irq_coalesce: Ps::ZERO,
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        let o1 = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        let o2 = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        let o3 = nic.deliver(Ps::ns(1), 0, frame(10), &mut bh);
        assert!(matches!(
            o1,
            RxOutcome::Queued {
                wake: RxWake::Irq(_),
                ..
            }
        ));
        assert!(matches!(
            o2,
            RxOutcome::Queued {
                wake: RxWake::IrqPending(_),
                ..
            }
        ));
        assert!(matches!(
            o3,
            RxOutcome::Queued {
                wake: RxWake::IrqPending(_),
                ..
            }
        ));
    }

    #[test]
    fn moderated_frame_with_idle_bh_demands_timer_kick() {
        // The satellite-1 hazard: inside the moderation window with no
        // BH pending, the outcome must be the unmissable TimerKick
        // obligation, not a silent flag pair.
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        // Drain the BH run the first frame scheduled.
        bh.begin_run();
        while bh.pop_next().is_some() {}
        nic.replenish(0, 1);
        assert!(!bh.finish_run());
        // Second frame lands inside the 25 µs window on an idle BH.
        let out = nic.deliver(Ps::us(5), 0, frame(10), &mut bh);
        assert_eq!(
            out,
            RxOutcome::Queued {
                queue: 0,
                wake: RxWake::TimerKick(CoreId(0)),
            }
        );
    }

    #[test]
    fn bh_wake_only_when_no_run_pending() {
        let mut nic = Nic::new(NicParams::default());
        let mut bh = BottomHalfQueue::new();
        let o1 = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        let o2 = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        assert!(matches!(
            o1,
            RxOutcome::Queued {
                wake: RxWake::Irq(_),
                ..
            }
        ));
        assert!(
            matches!(
                o2,
                RxOutcome::Queued {
                    wake: RxWake::Pending,
                    ..
                }
            ),
            "second frame piggybacks on the pending BH run"
        );
    }

    #[test]
    fn corrupt_frames_dropped_before_ring() {
        let mut nic = Nic::new(NicParams {
            rx_ring_size: 1,
            ..NicParams::default()
        });
        let mut bh = BottomHalfQueue::new();
        let mut f = frame(100);
        f.fcs_corrupt = true;
        let out = nic.deliver(Ps::ZERO, 0, f, &mut bh);
        assert_eq!(out, RxOutcome::DroppedCorrupt);
        // FCS drops never consume a ring slot and are counted apart
        // from ring overflow.
        assert_eq!(nic.pending(), 0);
        assert_eq!(nic.frames_corrupt_dropped(), 1);
        assert_eq!(nic.frames_dropped(), 0);
        assert_eq!(bh.backlog(), 0);
        let out = nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        assert!(matches!(out, RxOutcome::Queued { .. }));
    }

    #[test]
    #[should_panic(expected = "more than pending")]
    fn over_replenish_panics() {
        let mut nic = Nic::new(NicParams::default());
        nic.replenish(0, 1);
    }

    fn quad_queue() -> Nic {
        let mut nic = Nic::new(NicParams {
            num_queues: 4,
            ..NicParams::default()
        });
        nic.bind_queue_cores(&[CoreId(0), CoreId(2), CoreId(4), CoreId(6)]);
        nic
    }

    #[test]
    fn rss_steering_is_deterministic_across_instances() {
        // The RSS hash is a fixed function of the flow tuple: two
        // independently built NICs (a fresh "seed"/run) agree on every
        // steering decision, and a flow never migrates between queues.
        let a = quad_queue();
        let b = quad_queue();
        for src in 0..16u32 {
            for ep in 0..8u8 {
                let f = flow_frame(src, 0, 0, ep);
                let q = a.rss_queue(&f);
                assert_eq!(q, b.rss_queue(&f), "steering differs between runs");
                assert_eq!(q, a.rss_queue(&f), "steering differs across calls");
                assert!(q < 4);
            }
        }
    }

    #[test]
    fn rss_spreads_distinct_flows() {
        let nic = quad_queue();
        let mut hit = [false; 4];
        for src in 1..=8u32 {
            let f = flow_frame(src, 0, 0, (src % 4) as u8);
            hit[nic.rss_queue(&f)] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "8 distinct flows left an RX queue idle: {hit:?}"
        );
    }

    #[test]
    fn single_queue_never_hashes() {
        let nic = Nic::new(NicParams::default());
        for src in 0..64u32 {
            assert_eq!(nic.rss_queue(&flow_frame(src, 1, src as u8, 0)), 0);
        }
    }

    #[test]
    fn per_queue_rings_and_replenish_are_independent() {
        let mut nic = Nic::new(NicParams {
            num_queues: 2,
            rx_ring_size: 2,
            ..NicParams::default()
        });
        nic.bind_queue_cores(&[CoreId(0), CoreId(2)]);
        let mut bh0 = BottomHalfQueue::new();
        let mut bh1 = BottomHalfQueue::new();
        // Interleave deliveries across the two rings.
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0);
        nic.deliver(Ps::ZERO, 1, frame(10), &mut bh1);
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0);
        nic.deliver(Ps::ZERO, 1, frame(10), &mut bh1);
        assert_eq!(nic.pending_on(0), 2);
        assert_eq!(nic.pending_on(1), 2);
        assert_eq!(nic.pending(), 4);
        // Queue 0 full; queue 1 full too — but replenishing queue 1
        // must not free queue 0's ring.
        nic.replenish(1, 2);
        assert_eq!(
            nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0),
            RxOutcome::DroppedRingFull
        );
        assert!(matches!(
            nic.deliver(Ps::ZERO, 1, frame(10), &mut bh1),
            RxOutcome::Queued { queue: 1, .. }
        ));
        // Interleaved partial replenish keeps per-queue accounting.
        nic.replenish(0, 1);
        nic.replenish(1, 1);
        assert_eq!(nic.pending_on(0), 1);
        assert_eq!(nic.pending_on(1), 0);
    }

    #[test]
    #[should_panic(expected = "more than pending")]
    fn per_queue_over_replenish_panics() {
        let mut nic = Nic::new(NicParams {
            num_queues: 2,
            ..NicParams::default()
        });
        nic.bind_queue_cores(&[CoreId(0), CoreId(1)]);
        let mut bh = BottomHalfQueue::new();
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh);
        // One skbuff pending on queue 0, none on queue 1.
        nic.replenish(1, 1);
    }

    #[test]
    fn per_queue_watermarks_and_irq_windows() {
        let mut nic = Nic::new(NicParams {
            num_queues: 2,
            ..NicParams::default()
        });
        nic.bind_queue_cores(&[CoreId(0), CoreId(2)]);
        let metrics = Metrics::new();
        nic.attach_metrics(metrics.clone(), 7);
        let mut bh0 = BottomHalfQueue::new();
        let mut bh1 = BottomHalfQueue::new();
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0);
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0);
        nic.deliver(Ps::ZERO, 0, frame(10), &mut bh0);
        // Queue 1's first frame arrives *inside* queue 0's window but
        // still raises its own IRQ: moderation is per queue.
        let out = nic.deliver(Ps::us(1), 1, frame(10), &mut bh1);
        assert!(matches!(
            out,
            RxOutcome::Queued {
                queue: 1,
                wake: RxWake::Irq(CoreId(2)),
            }
        ));
        assert_eq!(metrics.gauge(7, "nic.q0.ring_high_watermark"), Some(3));
        assert_eq!(metrics.gauge(7, "nic.q1.ring_high_watermark"), Some(1));
        assert_eq!(metrics.gauge(7, "nic.ring_high_watermark"), Some(3));
        assert_eq!(metrics.counter(7, "nic.q0.irqs"), 1);
        assert_eq!(metrics.counter(7, "nic.q0.irqs_coalesced"), 2);
        assert_eq!(metrics.counter(7, "nic.q1.irqs"), 1);
        assert_eq!(metrics.counter(7, "nic.irqs"), 2);
    }

    #[test]
    fn spread_queue_cores_walks_subchips() {
        let topo = Topology::default();
        let p4 = NicParams {
            num_queues: 4,
            ..NicParams::default()
        };
        assert_eq!(
            spread_queue_cores(&p4, &topo),
            vec![CoreId(0), CoreId(2), CoreId(4), CoreId(6)],
            "consecutive queues must land on distinct L2 domains"
        );
        let p8 = NicParams {
            num_queues: 8,
            ..NicParams::default()
        };
        assert_eq!(
            spread_queue_cores(&p8, &topo),
            vec![
                CoreId(0),
                CoreId(2),
                CoreId(4),
                CoreId(6),
                CoreId(1),
                CoreId(3),
                CoreId(5),
                CoreId(7)
            ]
        );
        // A non-zero irq_core stays on queue 0.
        let p2 = NicParams {
            num_queues: 2,
            irq_core: CoreId(3),
            ..NicParams::default()
        };
        assert_eq!(spread_queue_cores(&p2, &topo), vec![CoreId(3), CoreId(0)]);
    }

    #[test]
    #[should_panic(expected = "bound to two RX queues")]
    fn duplicate_queue_core_panics() {
        let mut nic = Nic::new(NicParams {
            num_queues: 2,
            ..NicParams::default()
        });
        nic.bind_queue_cores(&[CoreId(1), CoreId(1)]);
    }
}
