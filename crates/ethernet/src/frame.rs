//! Ethernet frames.
//!
//! A frame is a destination/source node pair (we use small integer node
//! ids instead of 48-bit MACs — the cluster has two hosts), an
//! EtherType and a payload of real bytes. The wire-occupancy helper
//! accounts for the full 10 GbE framing overhead so the achievable
//! payload rate lands where the paper puts it (≈1186 MiB/s line rate,
//! ~96-98 % of it reachable with page-sized fragments).

use bytes::Bytes;

/// EtherType used by Open-MX / MXoE traffic in this model.
pub const ETHERTYPE_OMX: u16 = 0x86DF;

/// Ethernet header: destination + source MAC (6 + 6) + EtherType (2).
pub const ETH_HEADER_BYTES: u64 = 14;
/// Frame check sequence.
pub const ETH_FCS_BYTES: u64 = 4;
/// Preamble + start-of-frame delimiter + inter-frame gap.
pub const ETH_GAP_BYTES: u64 = 8 + 12;
/// Total per-frame wire overhead beyond the payload.
pub const WIRE_OVERHEAD_BYTES: u64 = ETH_HEADER_BYTES + ETH_FCS_BYTES + ETH_GAP_BYTES;
/// Minimum Ethernet payload (frames are padded up to this).
pub const MIN_PAYLOAD_BYTES: u64 = 46;
/// Jumbo-frame MTU used throughout (the paper's myri10ge setup).
pub const JUMBO_MTU: u64 = 9000;

/// One Ethernet frame in flight.
#[derive(Debug, Clone)]
pub struct EthFrame {
    /// Sending host id.
    pub src: u32,
    /// Destination host id.
    pub dst: u32,
    /// EtherType (always [`ETHERTYPE_OMX`] here, kept for realism).
    pub ethertype: u16,
    /// Payload bytes (protocol header + data). `Bytes` so queueing a
    /// frame never copies payload data.
    pub payload: Bytes,
    /// Whether the frame check sequence was damaged in flight (fault
    /// injection). The receiving NIC verifies the FCS in hardware and
    /// discards such frames without consuming an RX ring slot.
    pub fcs_corrupt: bool,
}

impl EthFrame {
    /// Build a frame; panics if the payload exceeds the jumbo MTU —
    /// fragmentation is the *sender protocol's* job and a violation is
    /// a protocol bug we want loud.
    pub fn new(src: u32, dst: u32, payload: Bytes) -> EthFrame {
        assert!(
            payload.len() as u64 <= JUMBO_MTU,
            "payload {} exceeds MTU {JUMBO_MTU}",
            payload.len()
        );
        EthFrame {
            src,
            dst,
            ethertype: ETHERTYPE_OMX,
            payload,
            fcs_corrupt: false,
        }
    }

    /// Bytes of wire time this frame occupies, including header, FCS,
    /// preamble, inter-frame gap and minimum-frame padding.
    pub fn wire_bytes(&self) -> u64 {
        let payload = (self.payload.len() as u64).max(MIN_PAYLOAD_BYTES);
        payload + WIRE_OVERHEAD_BYTES
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> u64 {
        self.payload.len() as u64
    }
}

/// Wire efficiency of `payload`-sized frames: payload / wire bytes.
pub fn wire_efficiency(payload: u64) -> f64 {
    let p = payload.max(MIN_PAYLOAD_BYTES);
    payload as f64 / (p + WIRE_OVERHEAD_BYTES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_all_overheads() {
        let f = EthFrame::new(0, 1, Bytes::from(vec![0u8; 4096]));
        assert_eq!(f.wire_bytes(), 4096 + 38);
        assert_eq!(f.payload_len(), 4096);
    }

    #[test]
    fn small_frames_are_padded() {
        let f = EthFrame::new(0, 1, Bytes::from(vec![0u8; 10]));
        assert_eq!(f.wire_bytes(), 46 + 38);
    }

    #[test]
    fn efficiency_grows_with_payload() {
        assert!(wire_efficiency(64) < wire_efficiency(1500));
        assert!(wire_efficiency(1500) < wire_efficiency(4096));
        // Page-sized fragments keep ~99 % of the wire.
        assert!(wire_efficiency(4096) > 0.98);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_payload_panics() {
        EthFrame::new(0, 1, Bytes::from(vec![0u8; 9001]));
    }

    #[test]
    fn payload_sharing_is_cheap() {
        let data = Bytes::from(vec![7u8; 1024]);
        let f = EthFrame::new(0, 1, data.clone());
        // Bytes clones share storage: same pointer.
        assert_eq!(f.payload.as_ptr(), data.as_ptr());
    }
}
