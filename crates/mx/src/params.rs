//! MX/MXoE cost parameters.

use omx_sim::Ps;
use serde::{Deserialize, Serialize};

/// Calibrated per-operation costs of the native MX stack.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MxParams {
    /// User-library cost to post a send or receive (OS-bypass: a few
    /// cache-line writes into the NIC doorbell region).
    pub lib_post_cost: Ps,
    /// User-library cost to reap one completion event.
    pub lib_event_cost: Ps,
    /// NIC firmware cost added to each received *message* (matching,
    /// completion writeback) — charged as latency, not host CPU.
    pub nic_match_latency: Ps,
    /// Extra NIC firmware occupancy per transmitted fragment beyond
    /// wire serialization. This is what caps MX large-message
    /// throughput at ≈1140 MiB/s instead of the ≈1170 MiB/s the wire
    /// itself would allow for page-sized fragments.
    pub nic_frag_overhead: Ps,
    /// Fragment size used on the wire (page-sized, as Open-MX).
    pub frag_size: u64,
    /// Eager→rendezvous switch point (32 kB, like Open-MX).
    pub rndv_threshold: u64,
    /// One-way latency cost of the rendezvous handshake processing on
    /// each host (request build + match + reply build).
    pub rndv_host_cost: Ps,
    /// Library copy rate into the MX shared-memory segment (uncached
    /// source).
    pub shm_copy_in_rate: omx_sim::Rate,
    /// Library copy rate out of the segment (partially cache-warm).
    pub shm_copy_out_rate: omx_sim::Rate,
}

impl Default for MxParams {
    fn default() -> Self {
        MxParams {
            lib_post_cost: Ps::ns(250),
            lib_event_cost: Ps::ns(150),
            nic_match_latency: Ps::ns(500),
            nic_frag_overhead: Ps::ns(100),
            frag_size: 4096,
            rndv_threshold: 32 << 10,
            rndv_host_cost: Ps::ns(600),
            shm_copy_in_rate: omx_sim::Rate::gib_per_sec_f64(1.6),
            shm_copy_out_rate: omx_sim::Rate::gib_per_sec(3),
        }
    }
}

impl MxParams {
    /// Number of wire fragments for an `len`-byte message.
    pub fn frags_for(&self, len: u64) -> u64 {
        len.div_ceil(self.frag_size).max(1)
    }

    /// Whether `len` uses the rendezvous protocol.
    pub fn is_rndv(&self, len: u64) -> bool {
        len > self.rndv_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counting() {
        let p = MxParams::default();
        assert_eq!(p.frags_for(0), 1);
        assert_eq!(p.frags_for(1), 1);
        assert_eq!(p.frags_for(4096), 1);
        assert_eq!(p.frags_for(4097), 2);
        assert_eq!(p.frags_for(1 << 20), 256);
    }

    #[test]
    fn rendezvous_threshold() {
        let p = MxParams::default();
        assert!(!p.is_rndv(32 << 10));
        assert!(p.is_rndv((32 << 10) + 1));
    }
}
