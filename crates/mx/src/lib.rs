//! Native MX / Myrinet Express over Ethernet (MXoE) baseline model.
//!
//! The paper compares Open-MX against the native MX stack running on
//! the same Myri-10G boards (MXoE 1.2.4). MX differs from Open-MX in
//! exactly the ways that matter for the figures:
//!
//! * **OS-bypass**: the library talks to the NIC directly, no syscall
//!   per operation;
//! * **NIC-side matching and zero-copy receive**: the Myri-10G firmware
//!   matches incoming fragments and deposits them straight into the
//!   posted application buffer — *no host CPU copy at all*, which is
//!   precisely the copy Open-MX cannot avoid on commodity NICs;
//! * a rendezvous ("get") protocol above 32 kB, like MX's.
//!
//! [`MxParams`] carries the calibrated per-operation costs; the pure
//! cost helpers in [`curve`] produce the analytic MX ping-pong curve
//! (Fig 3/8's "MX" line). The event-driven MXoE endpoints used for the
//! IMB comparisons (Fig 11/12) live in the `open-mx` cluster world and
//! read their costs from here.

pub mod curve;
pub mod params;

pub use curve::pingpong_throughput_mibs;
pub use params::MxParams;
