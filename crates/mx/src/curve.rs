//! Analytic MX ping-pong performance.
//!
//! MX receive costs no host CPU, so its ping-pong time decomposes into
//! library post/reap costs, NIC latencies, wire serialization (with the
//! small per-fragment firmware overhead) and, above 32 kB, a rendezvous
//! handshake. No queueing ever builds up in a ping-pong, so the closed
//! form below *is* the steady-state simulation result — we use it for
//! the "MX" line of Figures 3, 8 and 11 and validate the event-driven
//! MXoE endpoints in the cluster against it.

use crate::params::MxParams;
use omx_ethernet::frame::WIRE_OVERHEAD_BYTES;
use omx_ethernet::LinkParams;
use omx_sim::Ps;

/// Bytes of the MX wire header on each data fragment.
pub const MX_FRAG_HEADER: u64 = 24;
/// Bytes of a rendezvous/control frame payload.
pub const MX_CTRL_BYTES: u64 = 32;

fn serialize_time(link: &LinkParams, payload: u64) -> Ps {
    link.rate.time_for(payload.max(46) + WIRE_OVERHEAD_BYTES)
}

/// One-way time of an `len`-byte MX message on an idle link.
pub fn oneway_time(mx: &MxParams, link: &LinkParams, len: u64) -> Ps {
    let frags = mx.frags_for(len);
    let full_frags = len / mx.frag_size;
    let tail = len % mx.frag_size;
    // Wire occupancy of all fragments (FIFO on the link).
    let mut wire = serialize_time(link, mx.frag_size + MX_FRAG_HEADER)
        .checked_add(Ps::ZERO)
        .unwrap()
        * full_frags;
    if tail > 0 || len == 0 {
        wire += serialize_time(link, tail + MX_FRAG_HEADER);
    }
    wire += mx.nic_frag_overhead * frags;
    let base = mx.lib_post_cost
        + link.tx_latency
        + wire
        + link.propagation
        + link.rx_latency
        + mx.nic_match_latency
        + mx.lib_event_cost;
    if mx.is_rndv(len) {
        // Rendezvous: request and clear-to-send control frames cross
        // the wire before the data flows.
        let ctrl = link.tx_latency
            + serialize_time(link, MX_CTRL_BYTES)
            + link.propagation
            + link.rx_latency
            + mx.rndv_host_cost;
        base + ctrl * 2
    } else {
        base
    }
}

/// MX ping-pong throughput in MiB/s for an `len`-byte message
/// (IMB PingPong convention: bytes / half-round-trip).
pub fn pingpong_throughput_mibs(mx: &MxParams, link: &LinkParams, len: u64) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let t = oneway_time(mx, link, len);
    len as f64 / t.as_secs_f64() / (1u64 << 20) as f64
}

/// MX half-round-trip latency (reported for small messages).
pub fn pingpong_latency(mx: &MxParams, link: &LinkParams, len: u64) -> Ps {
    oneway_time(mx, link, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mx() -> MxParams {
        MxParams::default()
    }
    fn link() -> LinkParams {
        LinkParams::default()
    }

    #[test]
    fn small_message_latency_is_microseconds() {
        let t = pingpong_latency(&mx(), &link(), 16);
        // MXoE small-message half-RTT is a handful of microseconds.
        assert!(t > Ps::us(2) && t < Ps::us(6), "latency {t}");
    }

    #[test]
    fn large_messages_approach_1140_mibs() {
        let r = pingpong_throughput_mibs(&mx(), &link(), 4 << 20);
        assert!((1100.0..1160.0).contains(&r), "4MB rate {r} MiB/s");
        let r16 = pingpong_throughput_mibs(&mx(), &link(), 16 << 20);
        assert!(r16 > r, "throughput grows with size");
        assert!(r16 < 1150.0, "stays below the ≈1141 MiB/s NIC cap: {r16}");
    }

    #[test]
    fn throughput_is_monotone_in_size() {
        let sizes = [16u64, 256, 4096, 65536, 1 << 20, 16 << 20];
        let mut prev = 0.0;
        for s in sizes {
            let r = pingpong_throughput_mibs(&mx(), &link(), s);
            assert!(r > prev, "rate at {s} not monotone: {r} <= {prev}");
            prev = r;
        }
    }

    #[test]
    fn rendezvous_adds_a_visible_step() {
        let below = oneway_time(&mx(), &link(), 32 << 10);
        let above = oneway_time(&mx(), &link(), (32 << 10) + 4096);
        // The extra fragment costs ~3.4 us of wire; the handshake adds
        // clearly more than that alone.
        let frag = link().rate.time_for(4096 + 24 + 38);
        assert!(above - below > frag + Ps::us(1));
    }

    #[test]
    fn zero_length_handled() {
        assert_eq!(pingpong_throughput_mibs(&mx(), &link(), 0), 0.0);
        let t = oneway_time(&mx(), &link(), 0);
        assert!(t > Ps::ZERO);
    }
}
