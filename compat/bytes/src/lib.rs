//! Offline-compatible subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into a shared,
//! immutable byte buffer; [`BytesMut`] is a growable builder that
//! freezes into one. Only the API surface this workspace uses is
//! implemented; the semantics match the real crate for that subset.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable slice of a shared immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing static data (copied here; the real crate
    /// keeps the reference, which is indistinguishable to callers).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi, "slice start {lo} past end {hi}");
        assert!(
            hi <= self.len(),
            "slice end {hi} past length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into a [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn builder_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2]);
        m.extend_from_slice(&[3]);
        let b = m.freeze();
        assert_eq!(b, Bytes::from(vec![1u8, 2, 3]));
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(..5);
    }
}
