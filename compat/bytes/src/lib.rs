//! Offline-compatible subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into a shared,
//! immutable byte buffer; [`BytesMut`] is a growable builder that
//! freezes into one. Only the API surface this workspace uses is
//! implemented; the semantics match the real crate for that subset.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable slice of a shared immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing static data (copied here; the real crate
    /// keeps the reference, which is indistinguishable to callers).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi, "slice start {lo} past end {hi}");
        assert!(
            hi <= self.len(),
            "slice end {hi} past length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into a [`Bytes`].
///
/// Long-lived builders double as serialization *arenas* via the
/// real-crate `builder.split().freeze()` idiom: `split` hands the
/// written prefix off for freezing and keeps a small pool of the
/// shared blocks it has produced. Once every [`Bytes`] view of a
/// pooled block has been dropped, the next `split` recycles that
/// block's allocation instead of asking the allocator — mirroring the
/// upstream crate's `reserve` reclaim, where a uniquely-owned buffer
/// is reused in place. A builder serializing transient payloads (the
/// per-node packet arena) therefore reaches a steady state that
/// allocates nothing.
#[derive(Default)]
pub struct BytesMut {
    /// Staging buffer the builder writes into; retains its capacity
    /// across `split` calls.
    data: Vec<u8>,
    /// Blocks previously split off this builder, retained for reuse.
    /// A block is recyclable when its strong count is back to the
    /// pool's own handle (every frozen view dropped).
    pool: Vec<Arc<Vec<u8>>>,
    /// Contents split off another builder, ready to freeze without a
    /// copy.
    out: Option<Arc<Vec<u8>>>,
}

impl BytesMut {
    /// Retained blocks per builder. Sized to cover the frames a node
    /// can have in flight at once — a rendezvous pull keeps tens of
    /// data frames alive between the wire, receive rings and pending
    /// copies, and a split can only recycle a block once every view of
    /// it has been dropped. Misses fall back to the allocator, so this
    /// is a performance bound, not a correctness one.
    const POOL_BLOCKS: usize = 128;

    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            pool: Vec::new(),
            out: None,
        }
    }

    /// The logical contents (written bytes, or the split-off block).
    fn as_slice(&self) -> &[u8] {
        match &self.out {
            Some(b) => b,
            None => &self.data,
        }
    }

    /// Fold a split-off block back into the staging buffer so the
    /// builder can be written again (cold path; the arena idiom
    /// freezes immediately after splitting).
    fn flatten(&mut self) {
        if let Some(b) = self.out.take() {
            self.data.extend_from_slice(&b);
        }
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.flatten();
        self.data.extend_from_slice(src);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Split the written contents off as a new builder, leaving this
    /// one empty (and its capacity warm) for the next message. The
    /// returned builder is typically frozen immediately:
    /// `arena.split().freeze()`.
    pub fn split(&mut self) -> BytesMut {
        self.flatten();
        // Prefer recycling a pooled block whose views have all been
        // dropped: clearing and refilling a uniquely-owned Vec touches
        // no allocator once its capacity has warmed up.
        let mut block = None;
        for i in 0..self.pool.len() {
            if Arc::strong_count(&self.pool[i]) == 1 {
                let mut arc = self.pool.swap_remove(i);
                let v = Arc::get_mut(&mut arc).expect("strong count checked");
                v.clear();
                v.extend_from_slice(&self.data);
                block = Some(arc);
                break;
            }
        }
        let arc = block.unwrap_or_else(|| Arc::new(self.data.clone()));
        if self.pool.len() < Self::POOL_BLOCKS {
            self.pool.push(Arc::clone(&arc));
        }
        self.data.clear();
        BytesMut {
            data: Vec::new(),
            pool: Vec::new(),
            out: Some(arc),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        match self.out {
            Some(arc) => {
                let end = arc.len();
                Bytes {
                    data: arc,
                    start: 0,
                    end,
                }
            }
            None => Bytes::from(self.data),
        }
    }
}

impl Clone for BytesMut {
    /// Deep copy of the logical contents (the block pool is a private
    /// optimization and is not cloned).
    fn clone(&self) -> BytesMut {
        BytesMut {
            data: self.as_slice().to_vec(),
            pool: Vec::new(),
            out: None,
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &BytesMut) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn builder_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2]);
        m.extend_from_slice(&[3]);
        let b = m.freeze();
        assert_eq!(b, Bytes::from(vec![1u8, 2, 3]));
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(..5);
    }

    #[test]
    fn split_freeze_round_trips_contents() {
        let mut arena = BytesMut::new();
        arena.extend_from_slice(b"hello");
        let a = arena.split().freeze();
        assert_eq!(a, Bytes::from(b"hello".to_vec()));
        assert!(arena.is_empty(), "split empties the builder");
        arena.extend_from_slice(b"world!");
        let b = arena.split().freeze();
        assert_eq!(&b[..], b"world!");
        assert_eq!(&a[..], b"hello", "earlier payload unaffected");
    }

    #[test]
    fn split_recycles_dropped_blocks() {
        let mut arena = BytesMut::new();
        arena.extend_from_slice(b"first");
        let first = arena.split().freeze();
        let block = Arc::as_ptr(&first.data);
        drop(first);
        // Every view of the first block is gone: the next split must
        // reuse its allocation rather than mint a new one.
        arena.extend_from_slice(b"second");
        let second = arena.split().freeze();
        assert_eq!(Arc::as_ptr(&second.data), block, "block recycled");
        assert_eq!(&second[..], b"second");
    }

    #[test]
    fn split_never_recycles_live_blocks() {
        let mut arena = BytesMut::new();
        arena.extend_from_slice(b"alive");
        let alive = arena.split().freeze();
        arena.extend_from_slice(b"fresh");
        let fresh = arena.split().freeze();
        assert_eq!(&alive[..], b"alive", "live view untouched");
        assert_eq!(&fresh[..], b"fresh");
        assert_ne!(Arc::as_ptr(&alive.data), Arc::as_ptr(&fresh.data));
    }

    #[test]
    fn writing_a_split_builder_folds_back() {
        let mut arena = BytesMut::new();
        arena.extend_from_slice(b"ab");
        let mut half = arena.split();
        half.extend_from_slice(b"cd");
        assert_eq!(&half[..], b"abcd");
        assert_eq!(half.freeze(), Bytes::from(b"abcd".to_vec()));
    }
}
