//! Offline-compatible subset of `serde_json`.
//!
//! Renders the [`serde::Value`] tree produced by the stub `Serialize`
//! trait as JSON text. Only serialization is provided — nothing in
//! this workspace parses JSON.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the stub value model cannot actually fail,
/// but the signature matches the real crate).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null"); // matches serde_json's arbitrary-precision-off behavior
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = vec![(1u64, "a\"b"), (2, "y")];
        assert_eq!(to_string(&v).unwrap(), "[[1,\"a\\\"b\"],[2,\"y\"]]");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![
            ("x".into(), Value::U64(1)),
            ("y".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(s, "{\n  \"x\": 1,\n  \"y\": [\n    true\n  ]\n}");
    }
}
