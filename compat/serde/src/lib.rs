//! Offline-compatible subset of `serde`.
//!
//! Instead of the real crate's visitor-based data model, [`Serialize`]
//! converts a value into a simple JSON-like [`Value`] tree, which is
//! all the serialization this workspace performs (`serde_json`
//! pretty-printing of figure series and metric snapshots). The derive
//! macros are re-exported from the sibling `serde_derive` stub.
//! [`Deserialize`] is a marker trait: nothing in the workspace
//! deserializes, but the derives still compile.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Marker for types the derive stub can notionally deserialize.
pub trait Deserialize: Sized {}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);

fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_values() {
        assert_eq!(42u32.to_value(), Value::U64(42));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_recurse() {
        let v = vec![1u8, 2];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
        let t = (1u8, "x");
        assert_eq!(
            t.to_value(),
            Value::Array(vec![Value::U64(1), Value::Str("x".into())])
        );
    }
}
