//! Offline-compatible subset of `criterion`.
//!
//! Same macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `bench_function`, `benchmark_group`), but the
//! measurement is a simple best-of-samples wall-clock timer printed to
//! stdout — no statistics, plots or baselines. Enough to keep
//! `cargo bench` compiling and giving ballpark numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run one benchmark and print its best sample time.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count to a ~2 ms sample.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 {
            best = best.min(b.elapsed / b.iters as u32);
        }
    }
    println!(
        "{name:<48} {:>12.1} ns/iter (best of {samples})",
        best.as_nanos() as f64
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
