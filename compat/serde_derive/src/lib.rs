//! Derive macros for the offline `serde` stub.
//!
//! Implemented without `syn`/`quote` (the build environment has no
//! registry access): the input item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — named-field structs,
//! tuple structs and unit-variant enums, all without generics — cover
//! every type this workspace derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    UnitEnum(Vec<String>),
}

/// Skip one attribute (`#` already consumed → consume the `[...]`).
fn skip_attr(iter: &mut impl Iterator<Item = TokenTree>) {
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
        other => panic!("serde stub derive: malformed attribute, got {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    // Header: attributes / visibility up to `struct` or `enum`.
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" {
                    kind = Some("struct");
                    break;
                } else if s == "enum" {
                    kind = Some("enum");
                    break;
                }
                // `pub` or similar visibility keyword: ignore (a
                // following `(crate)` group is ignored by the Group arm).
            }
            TokenTree::Group(_) => {}
            other => panic!("serde stub derive: unexpected token {other}"),
        }
    }
    let kind = kind.expect("serde stub derive: no struct/enum keyword");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }
    let shape = if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stub derive: unexpected struct body {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
            }
            other => panic!("serde stub derive: unexpected enum body {other:?}"),
        }
    };
    (name, shape)
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        iter.next(); // pub(crate) etc.
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde stub derive: unexpected field token {other}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to the next field-separating comma. Angle
        // brackets are not token groups, so track their depth manually.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1; // no trailing comma
    }
    count
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => skip_attr(&mut iter),
            TokenTree::Ident(id) => {
                let v = id.to_string();
                // Payload or discriminant would need real serde.
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "serde stub derive: enum `{enum_name}` variant `{v}` carries data, \
                         which the stub does not support"
                    );
                }
                variants.push(v);
                // Skip to the comma (covers `= discriminant`).
                for t in iter.by_ref() {
                    if let TokenTree::Punct(p) = t {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde stub derive: unexpected enum token {other}"),
        }
    }
    variants
}

/// Derive `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}

/// Derive `serde::Deserialize` (marker impl only).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated impl parses")
}
