//! Offline-compatible subset of `proptest`.
//!
//! Same macro and combinator surface (`proptest!`, `prop_oneof!`,
//! `any`, ranges, tuples, `collection::vec`, `prop_map`), but inputs
//! come from a deterministic per-test RNG (seeded from the test path)
//! and failures are plain panics — no persistence file and no
//! shrinking. A failing case therefore reports the generated values
//! via the assertion message rather than a minimized counterexample.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test path, so
    /// every run of a given test sees the same inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's module path + name.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike the real crate there is no shrinking: `generate` produces a
/// value directly from the RNG.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Rc<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter mapping generated values through a function.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<Rc<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; `push` options onto it.
    pub fn empty() -> Union<T> {
        Union {
            options: Vec::new(),
        }
    }

    /// Add one option, builder style.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Union<T> {
        self.options.push(Rc::new(s));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

pub mod collection {
    use super::test_runner::TestRng;
    use super::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let union = $crate::Union::empty();
        $( let union = union.or($option); )+
        union
    }};
}

/// Assert within a property (plain `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property (plain `assert_eq!` in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property (plain `assert_ne!` in the stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs `cases` times with inputs
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _ in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )+};
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Any, Arbitrary, Map, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x),
        ]) {
            prop_assert!(v < 20 || (100..110).contains(&v));
        }

        #[test]
        fn vecs_respect_size(xs in crate::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
        }
    }
}
