//! Offline-compatible subset of `rayon`.
//!
//! `par_iter()` here returns the ordinary sequential iterator, so
//! `.map(..).collect()` chains compile and produce identical results
//! — the simulation sweeps it parallelizes are pure functions, so
//! only wall-clock time differs. Swap in the real crate to get
//! parallelism back.

pub mod prelude {
    /// `par_iter()` over a borrowed collection.
    pub trait IntoParallelRefIterator<'data> {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// Iterate by reference; sequential in this stub.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()` over an owned collection.
    pub trait IntoParallelIterator {
        /// The (sequential) iterator type.
        type Iter: Iterator;
        /// Iterate by value; sequential in this stub.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = std::ops::Range<u64>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Run two closures (sequentially in this stub) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let xs = vec![1u64, 2, 3];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let arr = [5u32; 4];
        assert_eq!(arr.par_iter().sum::<u32>(), 20);
    }
}
