//! Large-message rendezvous transfer with and without I/OAT offload.
//!
//! ```text
//! cargo run --release --example large_transfer
//! ```
//!
//! Replays the paper's core scenario: a 4 MB message crosses the wire
//! through the rendezvous + pull protocol; the receiving bottom half
//! either memcpys every 4 kB fragment (saturating a core) or submits
//! asynchronous I/OAT copies and rides the DMA engine to line rate.
//! Prints throughput and the receiver's per-category CPU usage.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::harness::{
    run_pingpong, run_stream, PingPongConfig, Placement, StreamConfig,
};

fn main() {
    println!("4 MB ping-pong over 10 GbE (line rate ≈ 1186 MiB/s):\n");
    for (label, cfg) in [
        ("memcpy receive", OmxConfig::default()),
        ("I/OAT offloaded receive", OmxConfig::with_ioat()),
    ] {
        let params = ClusterParams::with_cfg(cfg.clone());
        let pp = run_pingpong(PingPongConfig::new(
            params,
            4 << 20,
            Placement::TwoNodes {
                core_a: CoreId(2),
                core_b: CoreId(2),
            },
        ));
        assert!(pp.verified, "payload integrity");
        let params = ClusterParams::with_cfg(cfg);
        let st = run_stream(StreamConfig::new(params, 4 << 20));
        println!("{label}:");
        println!("  ping-pong throughput: {:8.1} MiB/s", pp.throughput_mibs);
        println!(
            "  stream: {:8.1} MiB/s with BH {:.0} %, driver {:.0} %, user {:.1} % CPU",
            st.throughput_mibs,
            st.bh_util * 100.0,
            st.driver_util * 100.0,
            st.user_util * 100.0
        );
        println!(
            "  peak skbuffs held by pending copies: {} (the §III-B bound)\n",
            st.max_skbuffs_held
        );
    }
    println!("Paper: +~40-50 % throughput and a ~95 %→60 % BH relief from the offload.");
}
