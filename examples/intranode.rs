//! Intra-node (shared-memory) communication and core placement.
//!
//! ```text
//! cargo run --release --example intranode
//! ```
//!
//! Open-MX routes local sends through a one-copy driver path (§III-C).
//! This example places the two processes on cores that share an L2,
//! on different sockets, and finally enables the synchronous I/OAT
//! offload — reproducing the three regimes of Figure 10 at a glance.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::cluster::ClusterParams;
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::harness::{run_pingpong, PingPongConfig, Placement};

fn rate(size: u64, core_b: CoreId, ioat: bool) -> f64 {
    let params = ClusterParams::with_cfg(if ioat {
        OmxConfig {
            ioat_shm_threshold: 32 << 10,
            ..OmxConfig::with_ioat()
        }
    } else {
        OmxConfig::default()
    });
    let r = run_pingpong(PingPongConfig::new(
        params,
        size,
        Placement::SameNode {
            core_a: CoreId(0),
            core_b,
        },
    ));
    assert!(r.verified);
    r.throughput_mibs
}

fn main() {
    println!("local ping-pong, one-copy driver path (MiB/s):\n");
    println!(
        "{:>8} {:>22} {:>18} {:>14}",
        "size", "shared L2 (cores 0,1)", "cross socket (0,4)", "I/OAT sync"
    );
    for size in [64u64 << 10, 512 << 10, 1 << 20, 4 << 20, 16 << 20] {
        println!(
            "{:>8} {:>22.0} {:>18.0} {:>14.0}",
            openmx_repro::sim::stats::format_bytes(size as f64),
            rate(size, CoreId(1), false),
            rate(size, CoreId(4), false),
            rate(size, CoreId(4), true),
        );
    }
    println!();
    println!("Shared-cache memcpy flies until the working set spills the L2,");
    println!("cross-socket memcpy crawls at ≈1.2 GiB/s, and the offloaded copy");
    println!("holds ≈2.3-2.4 GiB/s regardless of placement (Fig 10).");
}
