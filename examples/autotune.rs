//! Startup threshold auto-tuning (§VI future work, implemented here).
//!
//! ```text
//! cargo run --release --example autotune
//! ```
//!
//! Calibrates memcpy and I/OAT on the modeled hardware, derives the
//! three offload thresholds from first principles and shows they match
//! the paper's empirically chosen values — then demonstrates the
//! derivation reacting to different hardware.

use openmx_repro::hw::HwParams;
use openmx_repro::omx::autotune::{apply, calibrate};
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::sim::Rate;

fn show(label: &str, hw: &HwParams) {
    let t = calibrate(hw, &OmxConfig::default());
    println!(
        "{label:<28} fragment ≥ {:>5} B | network ≥ {:>4} kB | shm ≥ {:>5} kB",
        t.frag_threshold,
        t.net_msg_threshold >> 10,
        t.shm_threshold >> 10
    );
}

fn main() {
    println!("auto-derived offload thresholds (paper's empirical: 1 kB / 64 kB / 1 MB):\n");
    let stock = HwParams::default();
    show("paper testbed (default)", &stock);

    let mut fast_cpu = stock.clone();
    fast_cpu.memcpy_rate_uncached = Rate::gib_per_sec(6);
    show("6 GiB/s memcpy host", &fast_cpu);

    let mut big_cache = stock.clone();
    big_cache.l2_cache_bytes = 16 << 20;
    show("16 MiB L2 host", &big_cache);

    let mut cfg = OmxConfig::with_ioat();
    apply(&mut cfg, calibrate(&stock, &OmxConfig::default()));
    println!(
        "\napplied to a config: net={} kB frag={} B shm={} kB",
        cfg.ioat_net_msg_threshold >> 10,
        cfg.ioat_frag_threshold,
        cfg.ioat_shm_threshold >> 10
    );
    println!("A faster CPU raises the fragment break-even; a bigger cache defers");
    println!("the shared-memory offload point — exactly the startup benchmarking");
    println!("the paper proposes in its conclusion.");
}
