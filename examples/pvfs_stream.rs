//! A PVFS-like I/O streaming workload.
//!
//! ```text
//! cargo run --release --example pvfs_stream
//! ```
//!
//! The paper's motivating deployment is PVFS2 over Open-MX between
//! BlueGene/P compute and I/O nodes (§I, §II-A). This example models
//! the receive-heavy half of that pattern: a compute node streams
//! large write requests to an I/O node which must ingest them at line
//! rate while keeping CPU free for the filesystem — exactly where the
//! asynchronous copy offload earns its keep.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::app::{App, AppCtx, Completion};
use openmx_repro::omx::cluster::{Cluster, ClusterParams};
use openmx_repro::omx::config::OmxConfig;
use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
use openmx_repro::sim::{Ps, Sim};
use std::cell::RefCell;
use std::rc::Rc;

const WRITE_SIZE: u64 = 1 << 20;
const WRITES: u32 = 32;
const MATCH_WRITE: u64 = 0xF11E;

struct ComputeNode {
    io_node: EpAddr,
    sent: u32,
}

impl App for ComputeNode {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        self.sent = 1;
        ctx.isend(
            self.io_node,
            MATCH_WRITE,
            vec![0xDA; WRITE_SIZE as usize],
            Some(1),
        );
    }
    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if matches!(comp, Completion::Send { .. }) && self.sent < WRITES {
            self.sent += 1;
            ctx.isend(
                self.io_node,
                MATCH_WRITE,
                vec![0xDA; WRITE_SIZE as usize],
                Some(1),
            );
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

#[derive(Default)]
struct IoStats {
    bytes: u64,
    writes: u32,
    fs_time: Ps,
    done_at: Ps,
}

struct IoNode {
    stats: Rc<RefCell<IoStats>>,
}

impl App for IoNode {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.irecv(MATCH_WRITE, u64::MAX, WRITE_SIZE, Some(2));
    }
    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        let Completion::Recv { data, .. } = comp else {
            return;
        };
        let mut st = self.stats.borrow_mut();
        st.bytes += data.len() as u64;
        st.writes += 1;
        // "Filesystem work": checksum + block allocation per write.
        let fs = Ps::us(120);
        st.fs_time += fs;
        st.done_at = ctx.now();
        let more = st.writes < WRITES;
        drop(st);
        ctx.compute(fs);
        if more {
            ctx.irecv(MATCH_WRITE, u64::MAX, WRITE_SIZE, Some(2));
        }
    }
    fn is_done(&self) -> bool {
        self.stats.borrow().writes >= WRITES
    }
}

fn run(cfg: OmxConfig) -> (f64, f64, f64) {
    let stats = Rc::new(RefCell::new(IoStats::default()));
    let params = ClusterParams::with_cfg(cfg);
    let mut cluster = Cluster::new(params);
    let mut sim: Sim<Cluster> = Sim::new();
    let io_addr = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(ComputeNode {
            io_node: io_addr,
            sent: 0,
        }),
    );
    cluster.add_endpoint(
        NodeId(1),
        CoreId(2),
        Box::new(IoNode {
            stats: stats.clone(),
        }),
    );
    cluster.start(&mut sim);
    sim.run(&mut cluster);
    let st = stats.borrow();
    assert_eq!(st.writes, WRITES, "all writes ingested");
    let elapsed = st.done_at.as_secs_f64();
    let rate = st.bytes as f64 / elapsed / (1u64 << 20) as f64;
    let meter = cluster.node(NodeId(1)).cpus.merged_meter();
    let bh = meter
        .total(openmx_repro::hw::cpu::category::BH)
        .as_secs_f64()
        / elapsed;
    let app = meter
        .total(openmx_repro::hw::cpu::category::APP)
        .as_secs_f64()
        / elapsed;
    (rate, bh * 100.0, app * 100.0)
}

fn main() {
    println!(
        "PVFS-like ingest: {} writes of {} MiB into one I/O node\n",
        WRITES,
        WRITE_SIZE >> 20
    );
    for (label, cfg) in [
        ("memcpy receive ", OmxConfig::default()),
        ("I/OAT offloaded", OmxConfig::with_ioat()),
    ] {
        let (rate, bh, app) = run(cfg);
        println!(
            "{label}: ingest {rate:7.1} MiB/s | receive BH {bh:4.1} % CPU | filesystem work {app:4.1} % CPU"
        );
    }
    println!();
    println!("With the copy offloaded, the I/O node ingests at line rate and");
    println!("keeps most of a core free for actual filesystem work — the");
    println!("PVFS result the paper cites for I/OAT in the TCP stack ([23]).");
}
