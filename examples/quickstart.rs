//! Quickstart: two hosts exchange a message over simulated 10 GbE.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a two-node cluster, opens one Open-MX endpoint per node,
//! sends a tagged message from node 0 to node 1 and prints what the
//! receiver observed — the minimal round trip through the public API:
//! `Cluster::new` → `add_endpoint` (with an [`App`]) → `start` → run.

use openmx_repro::hw::CoreId;
use openmx_repro::omx::app::{App, AppCtx, Completion};
use openmx_repro::omx::cluster::{Cluster, ClusterParams};
use openmx_repro::omx::{EpAddr, EpIdx, NodeId};
use openmx_repro::sim::Sim;

/// The receiving application: posts one receive and reports it.
struct Receiver;

impl App for Receiver {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        // Match info 0x42 with a full mask: exactly this tag.
        ctx.irecv(0x42, u64::MAX, 4096, None);
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if let Completion::Recv {
            data, match_info, ..
        } = comp
        {
            println!(
                "[{}] receiver got {} bytes (match_info {match_info:#x}): {:?}...",
                ctx.now(),
                data.len(),
                &data[..8.min(data.len())]
            );
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// The sending application: one message at startup.
struct Sender {
    peer: EpAddr,
}

impl App for Sender {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let payload = b"hello from node 0 over simulated 10 GbE!".to_vec();
        println!("[{}] sender posts {} bytes", ctx.now(), payload.len());
        ctx.isend(self.peer, 0x42, payload, None);
    }

    fn on_completion(&mut self, ctx: &mut AppCtx<'_>, comp: Completion) {
        if let Completion::Send { .. } = comp {
            println!("[{}] send completed", ctx.now());
        }
    }

    fn is_done(&self) -> bool {
        true
    }
}

fn main() {
    // Default parameters: the paper's testbed — two dual-quad-core
    // Xeon hosts, I/OAT chipset, 10 GbE back to back.
    let mut cluster = Cluster::new(ClusterParams::default());
    let mut sim: Sim<Cluster> = Sim::new();

    let receiver_addr = EpAddr {
        node: NodeId(1),
        ep: EpIdx(0),
    };
    cluster.add_endpoint(
        NodeId(0),
        CoreId(2),
        Box::new(Sender {
            peer: receiver_addr,
        }),
    );
    cluster.add_endpoint(NodeId(1), CoreId(2), Box::new(Receiver));

    cluster.start(&mut sim);
    let end = sim.run(&mut cluster);

    println!(
        "simulation finished at {end}: {} frames on the wire, {} bytes delivered",
        cluster.stats.frames_sent, cluster.stats.bytes_delivered
    );
    assert!(cluster.all_apps_done());
}
