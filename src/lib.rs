//! Facade crate for the Open-MX I/OAT reproduction workspace.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can reach every layer through a single dependency:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`hw`] — hardware cost models (memory, cache, I/OAT DMA engine, CPUs),
//! * [`ethernet`] — generic Linux-Ethernet substrate (skbuffs, NIC, wire,
//!   bottom halves),
//! * [`omx`] — the Open-MX stack itself (the paper's contribution),
//! * [`mx`] — the native MX/MXoE baseline model,
//! * [`mpi`] — the MPI layer and Intel MPI Benchmarks kernels.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

pub use omx_ethernet as ethernet;
pub use omx_hw as hw;
pub use omx_mpi as mpi;
pub use omx_mx as mx;
pub use omx_sim as sim;
pub use open_mx as omx;
